"""Array-backed dynamic MIS engine (the ``"fast"`` backend).

:class:`FastEngine` maintains exactly the same output as
:class:`~repro.core.template.TemplateEngine` -- the random-greedy MIS of the
current graph under the order ``pi`` -- but stores everything in flat,
index-addressed arrays instead of dicts and sets of hashable labels:

* node labels are *interned* to dense integer ids on arrival; ids of deleted
  nodes go to a free list and are reused by later insertions, so the arrays
  never grow beyond the historical peak node count;
* adjacency is one ``array('q')`` of neighbor ids per node (grow-on-demand,
  deletion swaps with the last entry), giving cache-friendly O(deg) scans
  with no hashing on the hot path;
* priorities, MIS states and liveness live in parallel arrays indexed by id.

The influenced-set propagation of Algorithm 1 is an iterative loop over
integer ids that mirrors :func:`repro.core.influenced.propagate_influence`
*level by level*: within a level every dirty node re-evaluates the MIS
invariant against a snapshot of the states, then all flips commit together.
Because flips only commit between levels, the per-level evaluation order is
irrelevant and both engines produce identical level sets, influenced sets,
adjustment counts and work counters -- this is machine-checked by the
differential conformance suite in ``tests/conformance/``.

Unlike the template engine -- which copies the full state dict on every
change and rescans all nodes to count adjustments (O(n) per change) -- the
fast engine touches only the influenced neighborhood, so its per-change cost
is proportional to the influenced-set walk that Theorem 1 bounds.  See
``benchmarks/bench_a4_engine_backends.py`` for the measured speedup.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.engine_api import BatchUpdateReport, EngineSnapshot, MISEngine
from repro.core.invariant import InvariantViolation
from repro.core.priorities import PriorityAssigner, RandomPriorityAssigner
from repro.graph.dynamic_graph import DynamicGraph, GraphError, canonical_edge
from repro.parallel.kernels import DESIRED_IN as _DESIRED_IN
from repro.parallel.kernels import DESIRED_UNCERTAIN as _DESIRED_UNCERTAIN

try:  # numpy accelerates the batched repair wave; plain python fallback below.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI and the image
    _np = None

Node = Hashable

_NO_ID = -1
_EMPTY_IDS = _np.empty(0, dtype=_np.int64) if _np is not None else None
#: Flipped-set size from which the batched repair wave switches to the
#: vectorized (numpy-mask) frontier; below it, per-call numpy overhead
#: exceeds the plain walk over such small adjacency slices.
_VECTOR_LEVEL_THRESHOLD = 64
#: Frontier size from which a ``csr=True`` engine evaluates a whole repair
#: level through the :class:`repro.core.csr.CSRMirror` gather kernels.
#: Below it, the serial walk over such small frontiers is cheaper than the
#: fixed per-call numpy overhead.  Tests monkeypatch this to force the CSR
#: path fully on (1) or off (a huge value).
_CSR_LEVEL_THRESHOLD = 32


@dataclass(frozen=True)
class FastUpdateReport:
    """Per-change report of :class:`FastEngine`.

    Field-compatible with the quantities
    :class:`~repro.core.dynamic_mis.MaintainerStatistics` records from a
    template :class:`~repro.core.template.UpdateReport`, but stored as plain
    integers instead of a full propagation trace (keeping the trace would put
    dict/set churn back on the hot path).
    """

    change_type: str
    v_star: Optional[Node]
    v_star_star: Optional[Node]
    influenced_size: int
    num_adjustments: int
    num_levels: int
    state_flips: int
    update_work: int
    evaluations: int
    influenced_labels: FrozenSet[Node]

    @property
    def influenced_set(self) -> Set[Node]:
        """The influenced set ``S`` as labels (parity with the template report)."""
        return set(self.influenced_labels)


class FastEngine(MISEngine):
    """Array-backed sequential-semantics dynamic MIS maintainer.

    Drop-in alternative to :class:`~repro.core.template.TemplateEngine`
    (both implement the :class:`~repro.core.engine_api.MISEngine` contract):
    same topology-change API, same outputs under the same seed, an order of
    magnitude lower constant factors.  Registered as ``"fast"``, selected via
    ``DynamicMIS(engine="fast")``.

    Parameters
    ----------
    priorities:
        Order ``pi``.  Defaults to a fresh
        :class:`~repro.core.priorities.RandomPriorityAssigner` with ``seed``.
        The assigner is only consulted when a node is interned (insertion),
        never on the propagation hot path.
    seed:
        Seed for the default priority assigner (ignored when ``priorities``
        is given).
    initial_graph:
        Optional starting graph whose MIS is computed with one array-based
        greedy pass.
    csr:
        Maintain an incremental :class:`repro.core.csr.CSRMirror` of the
        adjacency and evaluate large repair-wave levels through its
        vectorized gather kernels (the ``"fast-csr"`` backend).  Requires
        numpy; silently stays a plain fast engine when numpy is absent, so
        the flag is safe to pass unconditionally.  Outputs are bit-identical
        either way (machine-checked by the CSR differential suite).
    """

    def __init__(
        self,
        priorities: Optional[PriorityAssigner] = None,
        seed: int = 0,
        initial_graph: Optional[DynamicGraph] = None,
        csr: bool = False,
    ) -> None:
        self._priorities = priorities if priorities is not None else RandomPriorityAssigner(seed)
        # id-indexed parallel arrays (grow together in _new_slot).
        self._labels: List[Optional[Node]] = []  # id -> label (None = free slot)
        self._adj: List[array] = []  # id -> array('q') of neighbor ids
        self._prio: List[float] = []  # id -> float part of the priority key
        self._keys: List[Optional[Tuple]] = []  # id -> full priority key
        self._state = bytearray()  # id -> 1 iff in MIS
        self._alive = bytearray()  # id -> 1 iff node currently exists
        # Per-change scratch stamps (avoid clearing O(n) state every change).
        self._snap_stamp: List[int] = []  # id -> epoch of the old-state snapshot
        self._snap_state = bytearray()  # id -> state at snapshot time
        self._infl_stamp: List[int] = []  # id -> epoch when first counted influenced
        self._epoch = 0
        # Label interning.
        self._id_of: Dict[Node, int] = {}
        self._free: List[int] = []
        self._num_edges = 0
        # Optional shared-memory evaluation pool (attach_parallel); never
        # part of snapshots -- parallelism is an execution detail, not state.
        self._pool = None
        # Incremental float64 mirror of _prio (indexed by id, physical length
        # grows by doubling) -- the batched wave indexes priorities through
        # numpy without re-copying the python list every batch.
        self._prio_np = _np.zeros(0, dtype=_np.float64) if _np is not None else None
        # Optional slacked-CSR adjacency mirror (the "fast-csr" backend).
        self._csr_requested = bool(csr)
        self._csr = None
        if self._csr_requested and _np is not None:
            from repro.core.csr import CSRMirror

            self._csr = CSRMirror()
        # Hoisted dirty-marker (the mirror's bound set.add): every adjacency
        # mutation calls it, so skip the two attribute hops of `._csr.mark`.
        self._csr_mark = self._csr.mark if self._csr is not None else None
        if initial_graph is not None:
            self._bootstrap(initial_graph)

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def _bootstrap(self, graph: DynamicGraph) -> None:
        self._load_topology(graph.nodes(), graph.edges())
        # Greedy pass in increasing pi: any MIS neighbor was processed earlier,
        # unprocessed (hence later) neighbors still read as state 0.
        state = self._state
        order = sorted(range(len(self._labels)), key=lambda i: self._keys[i])
        for nid in order:
            if not any(state[m] for m in self._adj[nid]):
                state[nid] = 1

    def _load_topology(self, nodes: Iterable[Node], edges: Iterable[Tuple[Node, Node]]) -> None:
        """Intern ``nodes`` and load ``edges`` into the adjacency arrays.

        Shared by :meth:`_bootstrap` (followed by the greedy pass) and
        :meth:`restore` (followed by installing the snapshot states), so the
        interning scheme has a single build path.
        """
        for label in nodes:
            self._intern(label)
        id_of = self._id_of
        for u, v in edges:
            iu, iv = id_of[u], id_of[v]
            self._adj[iu].append(iv)
            self._adj[iv].append(iu)
            self._num_edges += 1

    # ------------------------------------------------------------------
    # Interning / slot management
    # ------------------------------------------------------------------
    def _new_slot(self) -> int:
        nid = len(self._labels)
        self._labels.append(None)
        self._adj.append(array("q"))
        self._prio.append(0.0)
        self._keys.append(None)
        self._state.append(0)
        self._alive.append(0)
        self._snap_stamp.append(0)
        self._snap_state.append(0)
        self._infl_stamp.append(0)
        prio_np = self._prio_np
        if prio_np is not None and len(prio_np) <= nid:
            grown = _np.zeros(max(16, 2 * len(prio_np), nid + 1), dtype=_np.float64)
            grown[: len(prio_np)] = prio_np
            self._prio_np = grown
        return nid

    def _intern(self, label: Node) -> int:
        """Assign ``label`` a dense id (reusing a free slot) and its priority."""
        nid = self._free.pop() if self._free else self._new_slot()
        key = self._priorities.assign(label)
        self._labels[nid] = label
        self._prio[nid] = float(key[0])
        self._keys[nid] = tuple(key)
        self._state[nid] = 0
        self._alive[nid] = 1
        del self._adj[nid][:]
        if self._prio_np is not None:
            self._prio_np[nid] = self._prio[nid]
        if self._csr_mark is not None:
            self._csr_mark(nid)
        self._id_of[label] = nid
        return nid

    def _release(self, nid: int) -> None:
        """Return a dead id to the free list (its label was already unmapped)."""
        self._labels[nid] = None
        self._keys[nid] = None
        del self._adj[nid][:]
        if self._csr_mark is not None:
            self._csr_mark(nid)
        self._free.append(nid)

    # ------------------------------------------------------------------
    # Parallel evaluation
    # ------------------------------------------------------------------
    def attach_parallel(self, pool: Optional[Any]) -> None:
        """Evaluate batched repair-wave frontiers on ``pool``.

        ``pool`` is a :class:`repro.parallel.pool.WorkerPool` (or ``None``
        to detach).  Only the batched path (:meth:`apply_batch`) consults
        it -- single-change propagation frontiers are far too small to pay
        dispatch overhead -- and only for frontiers past the pool's
        engagement threshold; everything else, including any pool failure,
        runs the serial evaluation, so results are bit-identical either way
        (the batch differential harness machine-checks this).
        """
        self._pool = pool

    @property
    def parallel_pool(self):
        """The attached :class:`~repro.parallel.pool.WorkerPool` (or ``None``)."""
        return self._pool

    # ------------------------------------------------------------------
    # CSR mirror (the "fast-csr" backend)
    # ------------------------------------------------------------------
    @property
    def csr_mirror(self):
        """The incremental :class:`~repro.core.csr.CSRMirror`, or ``None``.

        ``None`` when the engine was built without ``csr=True`` or numpy is
        unavailable (the engine then runs the plain wave).
        """
        return self._csr

    def csr_planes(self):
        """Synced frozen-layout planes for an external (FFI) backend.

        Patches every dirty row, then returns the five-plane dict documented
        in :mod:`repro.core.csr` (``starts``/``lengths``/``caps``/
        ``indices`` plus the engine's ``prio``/``state`` planes).  Raises
        :class:`RuntimeError` when no mirror is active -- a compiled backend
        should be constructed over a ``csr=True`` engine.
        """
        if self._csr is None:
            raise RuntimeError(
                "no CSR mirror active (construct the engine with csr=True "
                "and numpy available)"
            )
        capacity = len(self._labels)
        self._csr.prepare(self._adj, capacity)
        state = _np.frombuffer(self._state, dtype=_np.uint8)
        return self._csr.export_planes(capacity, self._prio_np, state)

    def _parallel_desired(self, frontier: Sequence[int], publish_csr: bool) -> Optional[bytes]:
        """Evaluate :meth:`_desired` over ``frontier`` on the worker pool.

        Returns one :mod:`repro.parallel.kernels` ``DESIRED_*`` code per
        frontier entry, or ``None`` when the pool did not run (caller falls
        back to the serial loop).  ``publish_csr`` ships the adjacency/
        priority planes -- needed once per repair wave, since topology and
        priorities are frozen while a wave runs; the state plane is
        re-published every level because levels commit flips.
        """
        pool = self._pool
        csr = self._csr
        if publish_csr:
            if csr is not None:
                # The incremental mirror already holds the packed adjacency;
                # ship its slacked planes instead of re-flattening the ragged
                # rows in python (workers run the engine_desired_csr kernel).
                capacity = len(self._labels)
                csr.prepare(self._adj, capacity)
                pool.publish("e_starts", csr.starts[:capacity].tobytes())
                pool.publish("e_lengths", csr.lengths[:capacity].tobytes())
                pool.publish("e_indices", csr.indices[: csr.tail].tobytes())
                pool.publish("e_prio", self._prio_np[:capacity].tobytes())
            else:
                adj = self._adj
                indptr = array("q", bytes(8 * (len(adj) + 1)))
                total = 0
                for nid, row in enumerate(adj):
                    indptr[nid] = total
                    total += len(row)
                indptr[len(adj)] = total
                indices = array("q", bytes(8 * total))
                position = 0
                for row in adj:
                    indices[position : position + len(row)] = row
                    position += len(row)
                pool.publish("e_indptr", indptr.tobytes())
                pool.publish("e_indices", indices.tobytes())
                pool.publish("e_prio", array("d", self._prio).tobytes())
        pool.publish("e_state", self._state)
        pool.publish("e_frontier", array("q", frontier).tobytes())
        pool.ensure("e_out", len(frontier))
        kernel = "engine_desired" if csr is None else "engine_desired_csr"
        if not pool.run(kernel, len(frontier)):
            return None
        return bytes(pool.view("e_out"))

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def priorities(self) -> PriorityAssigner:
        """The order ``pi``."""
        return self._priorities

    @property
    def graph(self) -> "FastGraphView":
        """Read-only :class:`DynamicGraph`-shaped view of the current topology."""
        return FastGraphView(self)

    def num_nodes(self) -> int:
        """Number of live nodes."""
        return len(self._id_of)

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    def capacity(self) -> int:
        """Number of allocated id slots (live + free); never shrinks."""
        return len(self._labels)

    def free_slots(self) -> int:
        """Number of ids currently waiting on the free list."""
        return len(self._free)

    def nodes(self) -> List[Node]:
        """All live node labels."""
        return list(self._id_of)

    def interned_items(self) -> Iterator[Tuple[Node, int]]:
        """``(label, id)`` pairs of the live interning map.

        The public surface an external (FFI) backend uses to translate the
        id-indexed :meth:`csr_planes` rows back to node labels; ids are only
        stable until the label is deleted (free slots are reused).
        """
        return iter(self._id_of.items())

    def has_node(self, label: Node) -> bool:
        """Whether ``label`` is a live node."""
        return label in self._id_of

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        iu = self._id_of.get(u)
        iv = self._id_of.get(v)
        return iu is not None and iv is not None and iv in self._adj[iu]

    def degree(self, label: Node) -> int:
        """Degree of ``label`` (raises :class:`GraphError` if absent)."""
        return len(self._adj[self._require(label)])

    def neighbor_labels(self, label: Node) -> List[Node]:
        """The neighbor labels of ``label``."""
        labels = self._labels
        return [labels[m] for m in self._adj[self._require(label)]]

    def mis(self) -> Set[Node]:
        """The current maximal independent set (as labels)."""
        state = self._state
        return {label for label, nid in self._id_of.items() if state[nid]}

    def states(self) -> Dict[Node, bool]:
        """Copy of the full output map ``label -> in MIS?``."""
        state = self._state
        return {label: bool(state[nid]) for label, nid in self._id_of.items()}

    def in_mis(self, label: Node) -> bool:
        """Whether ``label`` is currently in the MIS."""
        return bool(self._state[self._require(label)])

    def clustering(self) -> Dict[Node, Node]:
        """Correlation clustering view: every node -> its cluster center.

        MIS nodes are their own centers; every other node joins its earliest
        (smallest key) MIS neighbor, exactly as
        :meth:`repro.core.dynamic_mis.DynamicMIS.clustering` computes from the
        template engine.
        """
        labels, state, prio, keys = self._labels, self._state, self._prio, self._keys
        centers: Dict[Node, Node] = {}
        for label, nid in self._id_of.items():
            if state[nid]:
                centers[label] = label
                continue
            best = _NO_ID
            for m in self._adj[nid]:
                if state[m] and (
                    best == _NO_ID
                    or prio[m] < prio[best]
                    or (prio[m] == prio[best] and keys[m] < keys[best])
                ):
                    best = m
            centers[label] = labels[best] if best != _NO_ID else None
        return centers

    def verify(self) -> None:
        """Assert the MIS invariant at every live node (used heavily in tests)."""
        for label, nid in self._id_of.items():
            if self._state[nid] != self._desired(nid):
                raise InvariantViolation(f"MIS invariant violated at node {label!r}")

    def check_interning_invariants(self) -> None:
        """Assert the interning / free-list / adjacency bookkeeping is sound.

        Exercised by the property-based tests after every change batch:
        live ids and free ids partition the slot range, the label<->id maps
        are mutually inverse, adjacency is symmetric, contains only live ids
        and no self loops, and the edge counter matches the arrays.
        """
        capacity = len(self._labels)
        for parallel in (self._adj, self._prio, self._keys, self._snap_stamp):
            assert len(parallel) == capacity, "parallel arrays diverged in length"
        assert len(self._state) == capacity and len(self._alive) == capacity
        free = set(self._free)
        assert len(free) == len(self._free), "duplicate ids on the free list"
        live = set(self._id_of.values())
        assert not (free & live), "id is both free and live"
        assert free | live == set(range(capacity)), "leaked id slot"
        half_edges = 0
        for label, nid in self._id_of.items():
            assert self._alive[nid] and self._labels[nid] == label, "intern map broken"
            assert self._keys[nid] is not None and self._prio[nid] == self._keys[nid][0]
            assert self._priorities.knows(label), "live node lost its priority"
            row = self._adj[nid]
            assert len(set(row)) == len(row), "duplicate adjacency entry"
            for m in row:
                assert m != nid, "self loop"
                assert self._alive[m], "edge to a dead node"
                assert nid in self._adj[m], "asymmetric adjacency"
            half_edges += len(row)
        for nid in free:
            assert not self._alive[nid], "free id still alive"
            assert self._labels[nid] is None and self._keys[nid] is None
            assert len(self._adj[nid]) == 0, "free id kept adjacency"
        assert half_edges == 2 * self._num_edges, "edge counter out of sync"
        if self._prio_np is not None:
            assert len(self._prio_np) >= capacity, "priority mirror too short"
            assert self._prio_np[:capacity].tolist() == self._prio, (
                "incremental priority mirror diverged from _prio"
            )
        if self._csr is not None:
            self._csr.prepare(self._adj, capacity)
            self._csr.check_layout(capacity)
            assert self._csr.decode(capacity) == [list(row) for row in self._adj], (
                "CSR mirror diverged from the ragged adjacency"
            )

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def restore(self, snapshot: EngineSnapshot) -> None:
        """Rebuild the interned arrays from a label-level snapshot.

        The slot layout is *not* preserved -- labels are re-interned densely
        in snapshot order -- but every observable quantity (graph, states,
        priority keys, and therefore all future reports) is, which is all the
        :class:`~repro.core.engine_api.MISEngine` contract promises.
        """
        self._labels = []
        self._adj = []
        self._prio = []
        self._keys = []
        self._state = bytearray()
        self._alive = bytearray()
        self._snap_stamp = []
        self._snap_state = bytearray()
        self._infl_stamp = []
        self._epoch = 0
        self._id_of = {}
        self._free = []
        self._num_edges = 0
        self._prio_np = _np.zeros(0, dtype=_np.float64) if _np is not None else None
        if self._csr_requested and _np is not None:
            from repro.core.csr import CSRMirror

            self._csr = CSRMirror()
        self._csr_mark = self._csr.mark if self._csr is not None else None
        self._priorities.restore_keys(dict(snapshot.priority_keys))
        self._load_topology(snapshot.nodes, snapshot.edges)
        id_of = self._id_of
        for label, in_mis in snapshot.states.items():
            self._state[id_of[label]] = 1 if in_mis else 0

    # ------------------------------------------------------------------
    # Topology changes
    # ------------------------------------------------------------------
    def insert_edge(self, u: Node, v: Node) -> FastUpdateReport:
        """Insert edge ``{u, v}`` and restore the invariant."""
        iu = self._id_of.get(u)
        iv = self._id_of.get(v)
        if iu is None or iv is None:
            raise GraphError("both endpoints must exist before inserting an edge")
        if u == v:
            raise GraphError("self loops are not allowed")
        if iv in self._adj[iu]:
            raise GraphError(f"edge ({u!r}, {v!r}) already exists")
        self._adj[iu].append(iv)
        self._adj[iv].append(iu)
        self._num_edges += 1
        if self._csr_mark is not None:
            self._csr_mark(iu)
            self._csr_mark(iv)
        star = iv if self._earlier(iu, iv) else iu
        other = iu if star == iv else iv
        needs = self._state[star] != self._desired(star)
        return self._propagate(
            "edge_insertion", star, self._labels[other], source_changes=needs
        )

    def delete_edge(self, u: Node, v: Node) -> FastUpdateReport:
        """Delete edge ``{u, v}`` and restore the invariant."""
        iu = self._id_of.get(u)
        iv = self._id_of.get(v)
        if iu is None or iv is None or iv not in self._adj[iu]:
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph")
        self._remove_half_edge(iu, iv)
        self._remove_half_edge(iv, iu)
        self._num_edges -= 1
        star = iv if self._earlier(iu, iv) else iu
        other = iu if star == iv else iv
        needs = self._state[star] != self._desired(star)
        return self._propagate(
            "edge_deletion", star, self._labels[other], source_changes=needs
        )

    def insert_node(self, label: Node, neighbors: Iterable[Node] = ()) -> FastUpdateReport:
        """Insert ``label`` with edges to existing ``neighbors``."""
        if label in self._id_of:
            raise GraphError(f"node {label!r} already exists")
        neighbor_list = list(neighbors)
        neighbor_ids: List[int] = []
        for other in neighbor_list:
            if other == label:
                raise GraphError("self loops are not allowed")
            oid = self._id_of.get(other)
            if oid is None:
                raise GraphError(f"neighbor {other!r} is not in the graph")
            neighbor_ids.append(oid)
        if len(set(neighbor_ids)) != len(neighbor_ids):
            raise GraphError("duplicate neighbors in node insertion")
        nid = self._intern(label)
        row = self._adj[nid]
        mark = self._csr_mark
        for oid in neighbor_ids:
            row.append(oid)
            self._adj[oid].append(nid)
            if mark is not None:
                mark(oid)
        self._num_edges += len(neighbor_ids)
        # The new node enters with a provisional non-MIS output (state 0 set
        # by _intern); it flips iff it has no earlier MIS neighbor.
        needs = self._desired(nid)
        return self._propagate("node_insertion", nid, label, source_changes=needs)

    def delete_node(self, label: Node) -> FastUpdateReport:
        """Delete ``label`` and its incident edges, then restore the invariant."""
        nid = self._id_of.get(label)
        if nid is None:
            raise GraphError(f"node {label!r} is not in the graph")
        was_in_mis = bool(self._state[nid])
        later: List[int] = []
        if was_in_mis:
            later = [m for m in self._adj[nid] if self._earlier(nid, m)]
        for m in self._adj[nid]:
            self._remove_half_edge(m, nid)
        self._num_edges -= len(self._adj[nid])
        del self._adj[nid][:]
        self._alive[nid] = 0
        del self._id_of[label]
        report = self._propagate(
            "node_deletion",
            nid,
            label,
            source_changes=was_in_mis,
            source_alive=False,
            extra_dirty=later,
        )
        self._priorities.forget(label)
        self._release(nid)
        return report

    def apply_batch(self, changes: Sequence) -> BatchUpdateReport:
        """Apply ``changes`` atomically: array deltas first, one repair wave after.

        Native vectorized batch apply (the ROADMAP open item): every change
        is validated against the *evolving* topology and applied directly to
        the flat arrays -- no invariant repair in between -- while collecting
        the dirty seed set (later endpoints of edge changes, inserted nodes,
        former later-neighbors of deleted MIS nodes).  A single level-
        synchronous repair wave then restores the invariant over the dirty
        ids; with numpy available the wave commits each level's flips and
        deduplicates the next frontier through vectorized masks over the id
        space (see :meth:`_batch_frontier`).

        Matches :meth:`repro.core.template.TemplateEngine.apply_batch`
        report-for-report (influenced sets, adjustment counts, level/work
        counters), which the batched differential conformance suite checks.

        Raises
        ------
        GraphError
            If some change in the batch is invalid at its position -- raised
            by the up-front :func:`~repro.workloads.changes.validate_batch`
            pass, *before* any array delta is applied, so a failed batch
            leaves the engine untouched (the per-change checks inside the
            apply loop below are a defensive net and should be unreachable).
        """
        from repro.workloads.changes import (
            EdgeDeletion,
            EdgeInsertion,
            NodeDeletion,
            NodeInsertion,
            NodeUnmuting,
            validate_batch,
        )

        validate_batch(self.graph, changes)
        id_of = self._id_of
        adj = self._adj
        mark = self._csr_mark
        # Dirty nodes are tracked by *label*, exactly like the template batch:
        # a label deleted and re-inserted inside the same batch keeps its seat
        # in the seed set even though its id changed.
        dirty_labels: Set[Node] = set()
        deleted_labels: Set[Node] = set()
        dead_slots: List[int] = []
        applied: List = []

        for change in changes:
            if isinstance(change, EdgeInsertion):
                iu = id_of.get(change.u)
                iv = id_of.get(change.v)
                if iu is None or iv is None:
                    raise GraphError(f"edge insertion {change} references a missing node")
                if change.u == change.v:
                    raise GraphError("edge insertion would create a self loop")
                if iv in adj[iu]:
                    raise GraphError(f"edge ({change.u!r}, {change.v!r}) already exists")
                adj[iu].append(iv)
                adj[iv].append(iu)
                self._num_edges += 1
                if mark is not None:
                    mark(iu)
                    mark(iv)
                star = iv if self._earlier(iu, iv) else iu
                dirty_labels.add(self._labels[star])
            elif isinstance(change, EdgeDeletion):
                iu = id_of.get(change.u)
                iv = id_of.get(change.v)
                if iu is None or iv is None or iv not in adj[iu]:
                    raise GraphError(f"edge ({change.u!r}, {change.v!r}) does not exist")
                self._remove_half_edge(iu, iv)
                self._remove_half_edge(iv, iu)
                self._num_edges -= 1
                star = iv if self._earlier(iu, iv) else iu
                dirty_labels.add(self._labels[star])
            elif isinstance(change, (NodeInsertion, NodeUnmuting)):
                if change.node in id_of:
                    raise GraphError(f"node {change.node!r} already exists")
                neighbor_ids: List[int] = []
                for other in change.neighbors:
                    if other == change.node:
                        raise GraphError("node insertion would create a self loop")
                    oid = id_of.get(other)
                    if oid is None:
                        raise GraphError(f"insertion neighbor {other!r} does not exist")
                    neighbor_ids.append(oid)
                if len(set(neighbor_ids)) != len(neighbor_ids):
                    raise GraphError("duplicate neighbors in node insertion")
                nid = self._intern(change.node)
                row = adj[nid]
                for oid in neighbor_ids:
                    row.append(oid)
                    adj[oid].append(nid)
                    if mark is not None:
                        mark(oid)
                self._num_edges += len(neighbor_ids)
                dirty_labels.add(change.node)
                deleted_labels.discard(change.node)
            elif isinstance(change, NodeDeletion):
                nid = id_of.get(change.node)
                if nid is None:
                    raise GraphError(f"node {change.node!r} does not exist")
                if self._state[nid]:
                    labels = self._labels
                    dirty_labels.update(
                        labels[m] for m in adj[nid] if self._earlier(nid, m)
                    )
                for m in adj[nid]:
                    self._remove_half_edge(m, nid)
                self._num_edges -= len(adj[nid])
                del adj[nid][:]
                self._alive[nid] = 0
                del id_of[change.node]
                dirty_labels.discard(change.node)
                deleted_labels.add(change.node)
                dead_slots.append(nid)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown change type: {change!r}")
            applied.append(change)

        seed_nodes = {label for label in dirty_labels if label in id_of}
        report = self._batch_repair_wave(
            [id_of[label] for label in seed_nodes], applied, seed_nodes
        )
        for label in deleted_labels:
            self._priorities.forget(label)
        for nid in dead_slots:
            self._release(nid)
        return report

    # ------------------------------------------------------------------
    # Propagation (the hot path)
    # ------------------------------------------------------------------
    def _propagate(
        self,
        change_type: str,
        source: int,
        v_star_star: Optional[Node],
        source_changes: bool,
        source_alive: bool = True,
        extra_dirty: Iterable[int] = (),
    ) -> FastUpdateReport:
        """Iterative influenced-set walk; mirrors ``propagate_influence``."""
        state, adj, prio, keys = self._state, self._adj, self._prio, self._keys
        alive, labels = self._alive, self._labels
        self._epoch += 1
        epoch = self._epoch
        snap_stamp, snap_state = self._snap_stamp, self._snap_state
        infl_stamp = self._infl_stamp

        num_levels = 0
        state_flips = 0
        influenced = 0
        evaluations = 0
        work = 0
        touched: List[int] = []  # live ids whose state flipped at least once
        influenced_labels: List[Node] = []

        dirty: Set[int] = set()
        if source_changes:
            num_levels += 1
            state_flips += 1
            influenced += 1
            influenced_labels.append(labels[source] if source_alive else v_star_star)
            if source_alive:
                infl_stamp[source] = epoch
                snap_stamp[source] = epoch
                snap_state[source] = state[source]
                touched.append(source)
                state[source] ^= 1
                evaluations += 1
                work += len(adj[source])
                sp = prio[source]
                sk = keys[source]
                for m in adj[source]:
                    if prio[m] > sp or (prio[m] == sp and keys[m] > sk):
                        dirty.add(m)
        for m in extra_dirty:
            if alive[m]:
                dirty.add(m)

        cap = 2 * len(self._id_of) + 5
        level = 0
        while dirty:
            level += 1
            if level > cap:
                raise RuntimeError(
                    "influence propagation did not converge; the starting states "
                    "probably violated the MIS invariant before the change"
                )
            flipped: List[int] = []
            for nid in dirty:
                evaluations += 1
                work += len(adj[nid])
                if self._desired(nid) != state[nid]:
                    flipped.append(nid)
            if not flipped:
                break
            for nid in flipped:
                if snap_stamp[nid] != epoch:
                    snap_stamp[nid] = epoch
                    snap_state[nid] = state[nid]
                    touched.append(nid)
                if infl_stamp[nid] != epoch:
                    infl_stamp[nid] = epoch
                    influenced += 1
                    influenced_labels.append(labels[nid])
                state[nid] ^= 1
            state_flips += len(flipped)
            num_levels += 1
            dirty = set()
            for nid in flipped:
                np_, nk = prio[nid], keys[nid]
                for m in adj[nid]:
                    if prio[m] > np_ or (prio[m] == np_ and keys[m] > nk):
                        dirty.add(m)

        adjustments = sum(
            1 for nid in touched if alive[nid] and state[nid] != snap_state[nid]
        )
        return FastUpdateReport(
            change_type=change_type,
            v_star=labels[source] if alive[source] else v_star_star,
            v_star_star=v_star_star,
            influenced_size=influenced,
            num_adjustments=adjustments,
            num_levels=num_levels,
            state_flips=state_flips,
            update_work=work,
            evaluations=evaluations,
            influenced_labels=frozenset(influenced_labels),
        )

    def _batch_repair_wave(
        self, dirty_ids: List[int], applied: List, seed_nodes: Set[Node]
    ) -> BatchUpdateReport:
        """Level-synchronous repair wave over the batch's dirty ids.

        Same fixed-point iteration as :meth:`_propagate` but with no single
        source node: every dirty id re-evaluates the invariant against the
        level's state snapshot, all flips of a level commit together, and the
        next frontier is the later-in-``pi`` neighborhood of the flipped set.
        With numpy available, levels whose flipped set is large commit their
        flips and deduplicate the next frontier through vectorized masks
        (:meth:`_batch_frontier`); small levels use the same plain-python
        walk as the single-change path (the numpy call overhead would
        dominate there).  Counters are identical either way.
        """
        state, adj, labels = self._state, self._adj, self._labels
        self._epoch += 1
        epoch = self._epoch
        snap_stamp, snap_state = self._snap_stamp, self._snap_state
        infl_stamp = self._infl_stamp

        num_levels = 0
        state_flips = 0
        influenced = 0
        evaluations = 0
        work = 0
        touched: List[int] = []
        influenced_labels: List[Node] = []

        # Incrementally maintained priority mirror (no per-batch O(n) copy).
        prio_np = self._prio_np
        pool = self._pool
        csr = self._csr
        csr_state = None  # lazy uint8 view over self._state, built once per wave
        csr_published = False  # CSR/priority planes ship once per wave

        dirty: Iterable[int] = sorted(set(dirty_ids))
        cap = 2 * len(self._id_of) + 5
        level = 0
        while True:
            if _np is not None and isinstance(dirty, _np.ndarray):
                if len(dirty) >= _CSR_LEVEL_THRESHOLD and csr is not None:
                    frontier: Sequence[int] = dirty  # already unique (CSR frontier)
                else:
                    # Sub-threshold level: back to python ints -- the serial
                    # walk indexes lists, where np.int64 scalars cost ~1.3x.
                    frontier = dirty.tolist()
            else:
                frontier = list(dirty)
            if len(frontier) == 0:
                break
            level += 1
            if level > cap:
                raise RuntimeError(
                    "batch repair wave did not converge; the starting states "
                    "probably violated the MIS invariant before the batch"
                )
            codes = None
            if pool is not None and pool.engaged(len(frontier)):
                codes = self._parallel_desired(frontier, not csr_published)
                if codes is not None:
                    csr_published = True
            farr = None
            flipped: Sequence[int]
            if codes is None and csr is not None and len(frontier) >= _CSR_LEVEL_THRESHOLD:
                # Whole-level evaluation as one gather + segment-reduce over
                # the CSR mirror; only the rows this frontier reads are
                # patched.  Uncertain codes (exact float priority ties) fall
                # back to the full-key serial walk, like the pool path.
                if csr_state is None:
                    csr_state = _np.frombuffer(state, dtype=_np.uint8)
                farr = (
                    frontier
                    if isinstance(frontier, _np.ndarray)
                    else _np.asarray(frontier, dtype=_np.int64)
                )
                csr.prepare(adj, len(labels), farr)
                level_codes = csr.desired_codes(farr, csr_state, prio_np)
                evaluations += len(farr)
                work += csr.last_eval_edges
                desired_arr = level_codes == _DESIRED_IN
                for position in _np.flatnonzero(level_codes == _DESIRED_UNCERTAIN):
                    desired_arr[position] = self._desired(int(farr[position]))
                flipped = farr[desired_arr != (csr_state[farr] != 0)]
            elif codes is None:
                serial_flipped: List[int] = []
                for nid in frontier:
                    evaluations += 1
                    work += len(adj[nid])
                    if self._desired(nid) != state[nid]:
                        serial_flipped.append(nid)
                flipped = serial_flipped
            else:
                pool_flipped: List[int] = []
                for position, nid in enumerate(frontier):
                    evaluations += 1
                    work += len(adj[nid])
                    code = codes[position]
                    # Uncertain = an exact priority tie; only the full-key
                    # serial comparison can break it bit-identically.
                    desired = (
                        self._desired(nid) if code == _DESIRED_UNCERTAIN else bool(code)
                    )
                    if desired != state[nid]:
                        pool_flipped.append(nid)
                flipped = pool_flipped
            if len(flipped) == 0:
                break
            # Python bookkeeping loops index lists: iterate python ints
            # (np.int64 scalars cost ~1.3x on every list subscript).
            flipped_seq: Sequence[int] = (
                flipped.tolist()
                if _np is not None and isinstance(flipped, _np.ndarray)
                else flipped
            )
            for nid in flipped_seq:
                if snap_stamp[nid] != epoch:
                    snap_stamp[nid] = epoch
                    snap_state[nid] = state[nid]
                    touched.append(nid)
                if infl_stamp[nid] != epoch:
                    infl_stamp[nid] = epoch
                    influenced += 1
                    influenced_labels.append(labels[nid])
            state_flips += len(flipped)
            num_levels += 1
            if farr is not None and len(flipped) >= 16:
                # CSR level: vectorized flip commit + CSR-sliced frontier
                # (flipped rows were patched for this level's evaluation).
                csr_state[flipped] ^= 1
                dirty = csr.later_frontier(flipped, prio_np, self._keys)
            elif _np is not None and len(flipped) >= _VECTOR_LEVEL_THRESHOLD:
                if prio_np is None:  # engine predates numpy's availability
                    prio_np = _np.asarray(self._prio, dtype=_np.float64)
                flipped_arr = _np.asarray(flipped, dtype=_np.int64)
                _np.frombuffer(state, dtype=_np.uint8)[flipped_arr] ^= 1
                dirty = self._batch_frontier(flipped_arr, prio_np)
            else:
                # Tiny flip sets (including sub-16 CSR levels) commit through
                # the plain-python walk; numpy call overhead dominates there.
                for nid in flipped_seq:
                    state[nid] ^= 1
                next_dirty: Set[int] = set()
                prio, keys = self._prio, self._keys
                for nid in flipped_seq:
                    np_, nk = prio[nid], keys[nid]
                    for m in adj[nid]:
                        if prio[m] > np_ or (prio[m] == np_ and keys[m] > nk):
                            next_dirty.add(m)
                dirty = next_dirty

        del csr_state  # release the buffer export before any slot can grow
        alive = self._alive
        adjustments = sum(
            1 for nid in touched if alive[nid] and state[nid] != snap_state[nid]
        )
        return BatchUpdateReport(
            changes=applied,
            seed_nodes=seed_nodes,
            influenced_labels=frozenset(influenced_labels),
            influenced_size=influenced,
            num_adjustments=adjustments,
            num_levels=num_levels,
            state_flips=state_flips,
            update_work=work,
            evaluations=evaluations,
        )

    def _batch_frontier(self, flipped_arr, prio_np):
        """Vectorized next-frontier: later-in-``pi`` neighbors of the flipped set.

        Concatenates the flipped nodes' adjacency rows (zero-copy views over
        the ``array('q')`` buffers), keeps entries whose priority float
        exceeds their source's (ties -- astronomically unlikely under the
        random order but possible under deterministic assigners -- fall back
        to the full-key comparison), and deduplicates with ``np.unique``.
        """
        adj, keys = self._adj, self._keys
        rows = [
            _np.frombuffer(adj[int(nid)], dtype=_np.int64) if len(adj[int(nid)]) else _EMPTY_IDS
            for nid in flipped_arr
        ]
        if not rows:
            return []
        neighbors = _np.concatenate(rows)
        if neighbors.size == 0:
            return []
        sources = _np.repeat(flipped_arr, [row.size for row in rows])
        later = prio_np[neighbors] > prio_np[sources]
        ties = prio_np[neighbors] == prio_np[sources]
        if ties.any():
            tie_breaks = [
                keys[int(m)] > keys[int(s)]
                for m, s in zip(neighbors[ties], sources[ties])
            ]
            later = later.copy()
            later[_np.flatnonzero(ties)] = tie_breaks
        return [int(nid) for nid in _np.unique(neighbors[later])]

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _require(self, label: Node) -> int:
        nid = self._id_of.get(label)
        if nid is None:
            raise GraphError(f"node {label!r} is not in the graph")
        return nid

    def _earlier(self, a: int, b: int) -> bool:
        """True iff id ``a`` comes before id ``b`` in ``pi``."""
        pa, pb = self._prio[a], self._prio[b]
        if pa != pb:
            return pa < pb
        return self._keys[a] < self._keys[b]

    def _desired(self, nid: int) -> bool:
        """MIS-invariant target state: no earlier neighbor may be in the MIS."""
        state, prio, keys = self._state, self._prio, self._keys
        pf = prio[nid]
        kf = keys[nid]
        for m in self._adj[nid]:
            if state[m] and (prio[m] < pf or (prio[m] == pf and keys[m] < kf)):
                return False
        return True

    def _remove_half_edge(self, nid: int, other: int) -> None:
        row = self._adj[nid]
        position = row.index(other)
        last = len(row) - 1
        if position != last:
            row[position] = row[last]
        del row[last]
        mark = self._csr_mark
        if mark is not None:
            mark(nid)


class FastGraphView:
    """Read-only :class:`DynamicGraph`-shaped facade over a :class:`FastEngine`.

    Lets existing graph-consuming code (CLI summaries, clustering fallback,
    benchmarks, validation checks) read a fast engine's topology without the
    engine materializing dict-of-set adjacency.  Mutations must go through
    the engine's topology-change API.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: FastEngine) -> None:
        self._engine = engine

    def num_nodes(self) -> int:
        return self._engine.num_nodes()

    def num_edges(self) -> int:
        return self._engine.num_edges()

    def nodes(self) -> List[Node]:
        return self._engine.nodes()

    def has_node(self, node: Node) -> bool:
        return self._engine.has_node(node)

    def has_edge(self, u: Node, v: Node) -> bool:
        return self._engine.has_edge(u, v)

    def degree(self, node: Node) -> int:
        return self._engine.degree(node)

    def neighbors(self, node: Node) -> FrozenSet[Node]:
        return frozenset(self._engine.neighbor_labels(node))

    def iter_neighbors(self, node: Node) -> Iterator[Node]:
        return iter(self._engine.neighbor_labels(node))

    def max_degree(self) -> int:
        return max((self.degree(node) for node in self.nodes()), default=0)

    def edges(self) -> List[Tuple[Node, Node]]:
        seen = set()
        for node in self.nodes():
            for other in self._engine.neighbor_labels(node):
                seen.add(canonical_edge(node, other))
        return sorted(seen, key=repr)

    def copy(self) -> DynamicGraph:
        """Materialize an independent :class:`DynamicGraph` snapshot."""
        return DynamicGraph(nodes=self.nodes(), edges=self.edges())

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __len__(self) -> int:
        return self.num_nodes()

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes())

    def __repr__(self) -> str:
        return f"FastGraphView(num_nodes={self.num_nodes()}, num_edges={self.num_edges()})"


def fast_greedy_mis(graph: DynamicGraph, priorities: PriorityAssigner) -> Set[Node]:
    """Array-based from-scratch greedy MIS (same output as ``greedy_mis``).

    Used by the distributed networks' reference-validation path when the
    ``"fast"`` reference engine is selected: at large ``n`` the interning +
    integer-scan pass is markedly cheaper than the dict/set recomputation.
    """
    engine = FastEngine(priorities=_ReadOnlyPriorities(priorities), initial_graph=graph)
    return engine.mis()


def reference_mis(graph: DynamicGraph, priorities: PriorityAssigner, engine: str) -> Set[Node]:
    """From-scratch greedy MIS via the selected backend.

    Single dispatch point for every reference-validation path (the
    distributed networks' ``verify(reference_engine=...)``).  Resolves
    ``engine`` through the backend registry
    (:func:`repro.core.engine_api.create_engine`), so any registered
    third-party backend is usable as a verification reference with no edits
    here; ``"template"`` short-circuits to the plain greedy pass (building a
    full template engine just to read its MIS would copy the graph twice).
    """
    if engine == "template":
        from repro.core.greedy import greedy_mis

        return greedy_mis(graph, priorities)
    from repro.core.engine_api import create_engine

    built = create_engine(
        engine, priorities=_ReadOnlyPriorities(priorities), initial_graph=graph
    )
    return built.mis()


class _ReadOnlyPriorities(PriorityAssigner):
    """Adapter that reads keys from an existing assigner without mutating it."""

    def __init__(self, base: PriorityAssigner) -> None:
        self._base = base

    def assign(self, node: Node) -> Tuple:
        return self._base.key(node)

    def forget(self, node: Node) -> None:  # pragma: no cover - never deleted
        pass

    def key(self, node: Node) -> Tuple:
        return self._base.key(node)

    def knows(self, node: Node) -> bool:
        return self._base.knows(node)
