"""Core library: the paper's contribution in sequential (template) form.

This subpackage implements Section 3 of the paper:

* :mod:`repro.core.priorities` -- the uniformly random node order ``pi``
  (implemented, as in Section 4, by independent random IDs ``l_v``), plus the
  deterministic order used by the lower-bound baselines.
* :mod:`repro.core.greedy` -- the sequential random-greedy MIS that the
  dynamic algorithm simulates.
* :mod:`repro.core.invariant` -- the MIS invariant ("v is in M iff no earlier
  neighbor is in M") and checkers for it.
* :mod:`repro.core.influenced` -- the influenced sets ``S`` and ``S'`` of
  Theorem 1, computed by the propagation process the paper describes.
* :mod:`repro.core.engine_api` -- the formal :class:`MISEngine` contract all
  backends implement (single-change ops, batch-first ``apply_batch``, read
  views, ``snapshot``/``restore``) and the backend registry
  (``register_engine`` / ``available_engines`` / ``create_engine``).
* :mod:`repro.core.template` -- Algorithm 1, the model-agnostic template that
  restores the invariant after a single topology change.
* :mod:`repro.core.dynamic_mis` -- the user-facing dynamic MIS maintainer
  built on the template; this is the reference oracle against which the
  distributed protocols are validated.
* :mod:`repro.core.fast_engine` -- the array-backed production backend
  (``DynamicMIS(engine="fast")``): identical outputs to the template engine
  (enforced by the differential conformance suite), an order of magnitude
  lower constant factors.
* :mod:`repro.core.rng` -- seed normalization (plain ints or numpy
  Generators) shared by every randomized component.
"""

from typing import Any

from repro.core.priorities import (
    DeterministicPriorityAssigner,
    PriorityAssigner,
    RandomPriorityAssigner,
)
from repro.core.greedy import greedy_mis, greedy_mis_states
from repro.core.invariant import (
    find_invariant_violations,
    mis_invariant_holds_at,
    states_from_mis,
    verify_mis_invariant,
)
from repro.core.influenced import InfluencePropagation, propagate_influence
from repro.core.engine_api import (
    BatchUpdateReport,
    EngineSnapshot,
    MISEngine,
    UnknownEngineError,
    available_engines,
    create_engine,
    register_engine,
    unregister_engine,
)
from repro.core.template import TemplateEngine, UpdateReport
from repro.core.batch import apply_batch
from repro.core.fast_engine import (
    FastEngine,
    FastGraphView,
    FastUpdateReport,
    fast_greedy_mis,
    reference_mis,
)
from repro.core.dynamic_mis import DynamicMIS
from repro.core.rng import normalize_seed, spawn_seeds


def __getattr__(name: str) -> Any:
    # Live view: ``ENGINE_NAMES`` always reflects the current registry.
    if name == "ENGINE_NAMES":
        return available_engines()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PriorityAssigner",
    "RandomPriorityAssigner",
    "DeterministicPriorityAssigner",
    "greedy_mis",
    "greedy_mis_states",
    "mis_invariant_holds_at",
    "find_invariant_violations",
    "verify_mis_invariant",
    "states_from_mis",
    "InfluencePropagation",
    "propagate_influence",
    "TemplateEngine",
    "UpdateReport",
    "MISEngine",
    "EngineSnapshot",
    "UnknownEngineError",
    "register_engine",
    "unregister_engine",
    "available_engines",
    "create_engine",
    "BatchUpdateReport",
    "apply_batch",
    "FastEngine",
    "FastGraphView",
    "FastUpdateReport",
    "fast_greedy_mis",
    "reference_mis",
    "ENGINE_NAMES",
    "DynamicMIS",
    "normalize_seed",
    "spawn_seeds",
]
