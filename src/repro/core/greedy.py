"""The sequential random-greedy MIS that the dynamic algorithm simulates.

The greedy sequential MIS algorithm (paper, Section 1.1) inspects nodes by
increasing order of a permutation ``pi`` and adds a node to the MIS if and
only if none of its earlier neighbors was added.  For a *fixed* ``pi`` the
result is unique; when ``pi`` is uniformly random the resulting distribution
over independent sets is exactly what the paper's dynamic algorithm maintains
(this is the history-independence property of Section 5).

The functions here are the reference oracle used throughout the test suite:
every dynamic engine's output is compared against a from-scratch greedy
recomputation under the same priorities.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, Optional, Set

from repro.core.priorities import PriorityAssigner
from repro.graph.dynamic_graph import DynamicGraph

Node = Hashable


def greedy_mis(graph: DynamicGraph, priorities: PriorityAssigner) -> Set[Node]:
    """Return the greedy MIS of ``graph`` under the order given by ``priorities``.

    Every node of ``graph`` must already have an assigned priority.  Runs in
    O(V log V + E) time: nodes are visited in increasing order of ``pi`` and a
    node joins the MIS iff none of its earlier neighbors joined.
    """
    in_mis: Set[Node] = set()
    for node in priorities.sorted_nodes(graph.nodes()):
        if not any(other in in_mis for other in graph.iter_neighbors(node)):
            in_mis.add(node)
    return in_mis


def greedy_mis_states(graph: DynamicGraph, priorities: PriorityAssigner) -> Dict[Node, bool]:
    """Return the greedy MIS as a full state map ``node -> in MIS?``."""
    in_mis = greedy_mis(graph, priorities)
    return {node: node in in_mis for node in graph.nodes()}


def greedy_clustering(graph: DynamicGraph, priorities: PriorityAssigner) -> Dict[Node, Node]:
    """Return the random-greedy (pivot) clustering induced by the greedy MIS.

    As in [Ailon et al.] and Section 1.1 of the paper: every MIS node is the
    center of its own cluster, and every non-MIS node joins the cluster of its
    *earliest* (smallest random ID) MIS neighbor.  The returned mapping sends
    each node to its cluster center.
    """
    in_mis = greedy_mis(graph, priorities)
    centers: Dict[Node, Node] = {}
    for node in graph.nodes():
        if node in in_mis:
            centers[node] = node
            continue
        mis_neighbors = [other for other in graph.iter_neighbors(node) if other in in_mis]
        if not mis_neighbors:
            raise AssertionError(
                f"node {node!r} has no MIS neighbor; the greedy MIS is not maximal"
            )
        centers[node] = priorities.earliest(mis_neighbors)
    return centers


def greedy_coloring(graph: DynamicGraph, priorities: PriorityAssigner) -> Dict[Node, int]:
    """Sequential random-greedy coloring (first-fit in the order ``pi``).

    This is the "random greedy sequential coloring" discussed in the paper's
    Example 3 (Section 5).  Each node, in order of ``pi``, takes the smallest
    color not used by an earlier neighbor.
    """
    colors: Dict[Node, int] = {}
    for node in priorities.sorted_nodes(graph.nodes()):
        taken = {colors[other] for other in graph.iter_neighbors(node) if other in colors}
        color = 0
        while color in taken:
            color += 1
        colors[node] = color
    return colors


def independent_set_size_distribution(
    graph: DynamicGraph,
    seeds: Iterable[int],
    assigner_factory: Optional[Callable[[int], Any]] = None,
) -> Dict[int, int]:
    """Histogram of greedy MIS sizes over random orders (one per seed).

    Used by the history-independence and star-example experiments to estimate
    the output distribution of random greedy on a fixed graph.
    """
    from repro.core.priorities import RandomPriorityAssigner

    if assigner_factory is None:
        assigner_factory = RandomPriorityAssigner
    histogram: Dict[int, int] = {}
    for seed in seeds:
        priorities = assigner_factory(seed)
        for node in graph.nodes():
            priorities.assign(node)
        size = len(greedy_mis(graph, priorities))
        histogram[size] = histogram.get(size, 0) + 1
    return histogram
