"""The MIS invariant of Section 3 and checkers for it.

The invariant: *a node v is in M if and only if all of its neighbors that are
ordered before it according to ``pi`` are not in M.*  Whenever it holds at
every node, M is a maximal independent set equal to the output of the greedy
sequential algorithm under ``pi``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Set

from repro.core.priorities import PriorityAssigner
from repro.graph.dynamic_graph import DynamicGraph

Node = Hashable
States = Mapping[Node, bool]


class InvariantViolation(AssertionError):
    """Raised when the MIS invariant is expected to hold but does not."""


def desired_state(
    graph: DynamicGraph, priorities: PriorityAssigner, states: States, node: Node
) -> bool:
    """The state the MIS invariant dictates for ``node`` given its earlier neighbors.

    ``True`` means the node must be in M (no earlier neighbor is in M),
    ``False`` means it must be out of M.
    """
    node_key = priorities.key(node)
    for other in graph.iter_neighbors(node):
        if priorities.key(other) < node_key and states.get(other, False):
            return False
    return True


def mis_invariant_holds_at(
    graph: DynamicGraph, priorities: PriorityAssigner, states: States, node: Node
) -> bool:
    """True iff the MIS invariant holds at ``node``."""
    return states.get(node, False) == desired_state(graph, priorities, states, node)


def find_invariant_violations(
    graph: DynamicGraph, priorities: PriorityAssigner, states: States
) -> List[Node]:
    """Return all nodes at which the MIS invariant is violated."""
    return [
        node
        for node in graph.nodes()
        if not mis_invariant_holds_at(graph, priorities, states, node)
    ]


def verify_mis_invariant(
    graph: DynamicGraph, priorities: PriorityAssigner, states: States
) -> None:
    """Raise :class:`InvariantViolation` unless the invariant holds everywhere."""
    violations = find_invariant_violations(graph, priorities, states)
    if violations:
        sample = sorted(violations, key=repr)[:5]
        raise InvariantViolation(
            f"MIS invariant violated at {len(violations)} node(s), e.g. {sample}"
        )
    missing = [node for node in graph.nodes() if node not in states]
    if missing:
        raise InvariantViolation(f"nodes without a state: {sorted(missing, key=repr)[:5]}")


def states_from_mis(graph: DynamicGraph, mis_nodes: Iterable[Node]) -> Dict[Node, bool]:
    """Build a full state map from a set of MIS nodes."""
    members: Set[Node] = set(mis_nodes)
    return {node: node in members for node in graph.nodes()}


def mis_from_states(states: States) -> Set[Node]:
    """Extract the set of MIS nodes from a state map."""
    return {node for node, in_mis in states.items() if in_mis}
