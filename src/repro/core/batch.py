"""Batched topology changes (the paper's first open question, Section 6).

The paper analyses a *single* topology change at a time and asks whether the
analysis extends to "more than a single failure at a time".  This module
implements the natural extension of the template: apply a whole batch of
changes to the graph at once, seed the propagation with every node whose MIS
invariant may have broken, and restore the invariant in one propagation wave.

Formal guarantees for batches are open (and out of scope for a reproduction),
but two facts make the batched engine useful and testable:

* **Correctness** is unconditional: after the propagation the states equal the
  greedy MIS of the new graph under the same order, exactly as for single
  changes, because the propagation converges to the unique fixed point of the
  MIS invariant.
* **Sub-additivity in practice**: the influenced set of a batch is typically
  much smaller than the sum of the influenced sets of its changes applied one
  by one (opposite flips cancel), which ablation A2 quantifies.

The entry points are :func:`apply_batch` (operating on a
:class:`~repro.core.template.TemplateEngine`) and
:meth:`repro.core.dynamic_mis.DynamicMIS.apply_batch` which wraps it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Sequence, Set

from repro.core.influenced import InfluencePropagation, propagate_influence
from repro.core.template import TemplateEngine
from repro.graph.dynamic_graph import GraphError
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    TopologyChange,
    validate_change,
)

Node = Hashable


@dataclass
class BatchUpdateReport:
    """Outcome of applying one batch of topology changes atomically.

    Attributes
    ----------
    changes:
        The changes of the batch, in the order they were given.
    seed_nodes:
        Nodes whose invariant was re-checked directly because a change touched
        them (the batch analogue of ``v*``).
    propagation:
        The single propagation wave that restored the invariant.
    """

    changes: List[TopologyChange] = field(default_factory=list)
    seed_nodes: Set[Node] = field(default_factory=set)
    propagation: InfluencePropagation = None  # type: ignore[assignment]

    @property
    def influenced_set(self) -> Set[Node]:
        """Nodes that changed state at some point of the propagation."""
        return self.propagation.influenced

    @property
    def influenced_size(self) -> int:
        """``|S|`` of the batch."""
        return self.propagation.size

    @property
    def num_adjustments(self) -> int:
        """Nodes whose final output differs from before the batch."""
        return self.propagation.num_adjustments

    @property
    def num_levels(self) -> int:
        """Depth of the propagation (rounds of a direct distributed run)."""
        return self.propagation.num_levels

    @property
    def batch_size(self) -> int:
        """Number of changes in the batch."""
        return len(self.changes)


def apply_batch(engine: TemplateEngine, changes: Sequence[TopologyChange]) -> BatchUpdateReport:
    """Apply ``changes`` to ``engine`` atomically and restore the MIS invariant.

    The changes are validated against the *evolving* graph in the given order
    (e.g. an edge insertion may reference a node inserted earlier in the same
    batch), but no invariant repair happens until the whole batch has been
    applied; the repair then runs as a single propagation.

    Raises
    ------
    GraphError
        If some change in the batch is invalid at its position.
    """
    graph = engine.graph
    states: Dict[Node, bool] = engine.states()
    priorities = engine.priorities

    dirty: Set[Node] = set()
    deleted: Set[Node] = set()
    applied: List[TopologyChange] = []

    for change in changes:
        validate_change(graph, change)
        if isinstance(change, EdgeInsertion):
            graph.add_edge(change.u, change.v)
            dirty.add(_later(priorities, change.u, change.v))
        elif isinstance(change, EdgeDeletion):
            graph.remove_edge(change.u, change.v)
            dirty.add(_later(priorities, change.u, change.v))
        elif isinstance(change, (NodeInsertion, NodeUnmuting)):
            graph.add_node_with_edges(change.node, change.neighbors)
            priorities.assign(change.node)
            states[change.node] = False
            dirty.add(change.node)
            deleted.discard(change.node)
        elif isinstance(change, NodeDeletion):
            was_in_mis = states.get(change.node, False)
            later_neighbors = priorities.later_neighbors(graph, change.node)
            graph.remove_node(change.node)
            states.pop(change.node, None)
            dirty.discard(change.node)
            deleted.add(change.node)
            if was_in_mis:
                dirty.update(later_neighbors)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown change type: {change!r}")
        applied.append(change)

    dirty = {node for node in dirty if graph.has_node(node)}
    propagation = propagate_influence(
        graph,
        priorities,
        states,
        source=None,
        source_changes=False,
        extra_dirty=sorted(dirty, key=priorities.key),
    )
    engine.commit_propagation(propagation)
    for node in deleted:
        priorities.forget(node)
    return BatchUpdateReport(changes=applied, seed_nodes=dirty, propagation=propagation)


def _later(priorities, u: Node, v: Node) -> Node:
    """The endpoint that comes later in the order (the batch analogue of v*)."""
    return u if priorities.earlier(v, u) else v
