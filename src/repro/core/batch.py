"""Batched topology changes (the paper's first open question, Section 6).

The paper analyses a *single* topology change at a time and asks whether the
analysis extends to "more than a single failure at a time".  The batched
extension applies a whole batch of changes to the graph at once, seeds the
repair with every node whose MIS invariant may have broken, and restores the
invariant in one propagation wave.

Formal guarantees for batches are open (and out of scope for a reproduction),
but two facts make the batched extension useful and testable:

* **Correctness** is unconditional: after the repair wave the states equal
  the greedy MIS of the new graph under the same order, exactly as for single
  changes, because the propagation converges to the unique fixed point of the
  MIS invariant.
* **Sub-additivity in practice**: the influenced set of a batch is typically
  much smaller than the sum of the influenced sets of its changes applied one
  by one (opposite flips cancel), which ablation A2 quantifies.

Batch apply is a first-class method of the
:class:`~repro.core.engine_api.MISEngine` contract: every backend implements
:meth:`~repro.core.engine_api.MISEngine.apply_batch` natively (the template
engine as one dict/set propagation, the fast engine as array deltas followed
by a vectorized repair wave) and returns a
:class:`~repro.core.engine_api.BatchUpdateReport`.  This module remains as
the historical entry point: :func:`apply_batch` simply delegates to the
engine's own method, and :class:`BatchUpdateReport` is re-exported here for
callers that imported it from its original home.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.engine_api import BatchUpdateReport, MISEngine

__all__ = ["BatchUpdateReport", "apply_batch"]


def apply_batch(engine: MISEngine, changes: Iterable) -> BatchUpdateReport:
    """Apply ``changes`` to ``engine`` atomically and restore the MIS invariant.

    Thin wrapper around :meth:`repro.core.engine_api.MISEngine.apply_batch`
    (kept for backward compatibility -- the batch implementation used to live
    here and reach into template-engine internals).

    Raises
    ------
    GraphError
        If some change in the batch is invalid at its position.
    """
    return engine.apply_batch(list(changes))
