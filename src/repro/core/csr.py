"""Incrementally-maintained CSR mirror + vectorized level kernels.

:class:`CSRMirror` tracks :class:`~repro.core.fast_engine.FastEngine`'s
ragged ``array('q')`` adjacency as one flat int64 buffer so that a whole
repair-wave level evaluates as a single numpy gather + segment-reduce
instead of a per-node python walk (:func:`CSRMirror.desired_codes`), and the
next frontier builds as one sliced gather instead of a per-row
``frombuffer``/``concatenate`` list (:func:`CSRMirror.later_frontier`).

Incremental maintenance, not per-wave reconstruction: the engine ``mark()``s
a row dirty at every adjacency mutation, and :meth:`CSRMirror.prepare`
re-copies only the dirty rows that the current frontier actually reads.
Rows carry *slack* (capacity beyond their current length) so churn patches
in place; a row that outgrows its slab is abandoned and reallocated at the
tail, and when the abandoned dead space exceeds half the buffer the mirror
amortizes one full compacting rebuild.  Free-list id reuse needs no special
casing -- ``FastEngine._intern``/``_release`` clear the recycled row and
mark it dirty like any other mutation.

Frozen buffer layout (the compiled-backend contract)
----------------------------------------------------

The planes below are the exact memory an FFI backend (Rust/Cython/C) reads;
``tests/conformance/test_csr_differential.py`` registers a toy external
backend against them and gates it with the differential replay harnesses.
All integers are little-endian int64 (``q``), priorities are float64
(``d``), states are uint8 -- the same scalar formats
:mod:`repro.parallel.kernels` fixes for the shared-memory worker planes.

::

    starts   : int64[capacity]   row offset into `indices`
    lengths  : int64[capacity]   live entries of the row
    caps     : int64[capacity]   allocated slab size (slack = cap - length)
    indices  : int64[tail]       neighbor ids, row nid occupies
                                 indices[starts[nid] : starts[nid]+lengths[nid]]
    prio     : float64[capacity] float part of the priority key, by id
    state    : uint8[capacity]   1 iff the id is currently in the MIS

``capacity`` is the engine's allocated slot count (live + free ids; free
rows read as ``lengths == 0``).  Entries ``lengths[nid] <= pos <
caps[nid]`` of a slab are garbage; positions covered by no slab are dead
space awaiting compaction.  Exact float priority ties cannot be broken from
these planes alone -- like the worker kernels, a compiled backend must
report such rows as uncertain (:data:`~repro.parallel.kernels.
DESIRED_UNCERTAIN`) and let the host re-evaluate them with full python
keys; that escape discipline is what keeps every backend bit-identical.

This module imports numpy unconditionally; :mod:`repro.core.fast_engine`
only imports it when numpy is available (the engine keeps its plain-python
wave as the fallback).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Set

import numpy as np

from repro.parallel.kernels import DESIRED_IN, DESIRED_OUT, DESIRED_UNCERTAIN

_INT = np.int64


class CSRMirror:
    """Slacked-CSR shadow of a ragged adjacency, patched row-by-row.

    Parameters
    ----------
    min_slack:
        Extra capacity granted beyond a row's length at (re)allocation, so
        small degree growth patches in place.  Rebuilds also grant it.
    rebuild_floor:
        Dead space (abandoned slab positions) below which compaction is
        never triggered, whatever the ratio -- keeps tiny mirrors from
        rebuilding constantly.
    """

    def __init__(self, min_slack: int = 4, rebuild_floor: int = 64) -> None:
        self.starts = np.zeros(0, dtype=_INT)
        self.lengths = np.zeros(0, dtype=_INT)
        self.caps = np.zeros(0, dtype=_INT)
        self.indices = np.zeros(0, dtype=_INT)
        # Byte view over `indices` for patching: a memoryview slice-assign is
        # a plain memcpy, several times cheaper than routing every row copy
        # through `np.frombuffer` (patching is the mirror's per-batch tax, so
        # its constant factor decides where vectorization starts paying).
        self._ibytes = memoryview(self.indices).cast("B")
        self._min_slack = int(min_slack)
        self._rebuild_floor = int(rebuild_floor)
        self._tail = 0  # first never-allocated position in `indices`
        self._dead = 0  # abandoned slab positions below `tail`
        self._dirty: Set[int] = set()
        self._all_dirty = True  # fresh mirrors know nothing yet
        #: Bumped by every compacting rebuild; an FFI backend holding raw
        #: pointers must re-fetch the planes when it changes.
        self.generation = 0
        #: Total degree of the last :meth:`desired_codes` frontier.
        self.last_eval_edges = 0
        # Maintenance counters (read by tests and benchmarks).
        self.rebuilds = 0
        self.patched_rows = 0
        self.relocations = 0

    # ------------------------------------------------------------------
    # Dirty tracking
    # ------------------------------------------------------------------
    @property
    def mark(self) -> Callable[[int], None]:
        """Record that a row mutated since it was last synced.

        Exposed as the dirty set's bound ``add``: the engine calls this at
        every adjacency mutation, so callers should hoist ``mirror.mark``
        into a local once and pay only the plain call.
        """
        return self._dirty.add

    def invalidate(self) -> None:
        """Forget everything; the next :meth:`prepare` rebuilds from scratch."""
        self._all_dirty = True
        self._dirty.clear()

    def dirty_count(self) -> int:
        """Number of rows currently marked dirty (test hook)."""
        return len(self._dirty)

    @property
    def tail(self) -> int:
        """First never-allocated position of ``indices``."""
        return self._tail

    @property
    def dead(self) -> int:
        """Abandoned (unreachable) slab positions below :attr:`tail`."""
        return self._dead

    # ------------------------------------------------------------------
    # Synchronisation
    # ------------------------------------------------------------------
    def prepare(self, adj: Sequence, capacity: int, rows: Any = None) -> None:
        """Bring the mirror up to date for ``rows`` (``None`` = every row).

        ``adj`` is the engine's ragged adjacency (one buffer-protocol int64
        row per slot), ``capacity`` its allocated slot count.  At most the
        outstanding dirty rows are re-copied: when more rows are requested
        than are dirty the whole dirty set is synced outright (filtering
        would cost more than the patches it saves), otherwise only the
        dirty rows the frontier actually reads are.  Either way maintenance
        is proportional to the influenced set, never the graph.  May
        trigger a compacting rebuild when the abandoned dead space passes
        half of :attr:`tail`.
        """
        if self._all_dirty:
            self._rebuild(adj, capacity)
            return
        self._ensure_capacity(capacity)
        dirty = self._dirty
        if not dirty:
            return
        if rows is None or len(dirty) <= len(rows):
            # Syncing everything outstanding is no dearer than filtering it
            # (patching a row the frontier never reads is harmless), and it
            # empties the dirty set so later levels of the same wave take
            # the fast path above instead of re-hashing a wide frontier.
            pending = sorted(dirty)
            dirty.clear()
        else:
            requested = rows.tolist() if isinstance(rows, np.ndarray) else rows
            touched = [r for r in requested if r in dirty]
            if not touched:
                return
            dirty.difference_update(touched)
            pending = sorted(touched)
        self._patch_rows(pending, adj)
        if self._dead > self._rebuild_floor and self._dead * 2 > self._tail:
            self._rebuild(adj, capacity)

    def _patch_rows(self, pending: List[int], adj: Sequence) -> None:
        """Re-copy ``pending`` (sorted ids) from ``adj`` into the mirror.

        Rows still fitting their slab -- the overwhelming case, and the
        *only* case under deletions, which can never grow a row -- are
        re-copied wholesale: one C-level ``b"".join`` over the raw row
        buffers, one ``frombuffer``, one fancy-index scatter.  Patching is
        the mirror's per-batch tax, and this keeps it at tens of
        nanoseconds per row instead of the ~1us a per-row python loop
        costs, which is what lets the vectorized level evaluation beat the
        serial walk even on levels whose rows a batch just edited.  Rows
        that outgrew their slab relocate to the tail first (python loop,
        but bounded by the batch's insertions).
        """
        count = len(pending)
        self.patched_rows += count
        rows = [adj[nid] for nid in pending]
        lens = np.fromiter(map(len, rows), dtype=_INT, count=count)
        row_ids = np.fromiter(pending, dtype=_INT, count=count)
        grown = lens > self.caps[row_ids]
        if grown.any():
            for position in np.flatnonzero(grown).tolist():
                self._relocate_row(pending[position], rows[position], int(lens[position]))
            keep = np.flatnonzero(~grown)
            rows = [rows[i] for i in keep.tolist()]
            fit_ids, fit_lens = row_ids[keep], lens[keep]
        else:
            fit_ids, fit_lens = row_ids, lens
        total = int(fit_lens.sum())
        if total:
            packed = np.frombuffer(b"".join(rows), dtype=_INT)
            packed_starts = np.cumsum(fit_lens) - fit_lens
            destination = np.arange(total, dtype=_INT) + np.repeat(
                self.starts[fit_ids] - packed_starts, fit_lens
            )
            self.indices[destination] = packed
        self.lengths[row_ids] = lens

    def _relocate_row(self, nid: int, row: Sequence, length: int) -> None:
        """Abandon an outgrown slab, reallocate the row at the tail with slack."""
        self._dead += int(self.caps[nid])
        self.relocations += 1
        cap = length + max(self._min_slack, length >> 1)
        self._reserve(cap)
        start = self._tail
        self._ibytes[start * 8 : (start + length) * 8] = memoryview(row).cast("B")
        self.starts[nid] = start
        self.caps[nid] = cap
        self._tail += cap

    def _reserve(self, count: int) -> None:
        need = self._tail + count
        if need <= self.indices.size:
            return
        grown = np.empty(max(64, need, 2 * self.indices.size), dtype=_INT)
        grown[: self._tail] = self.indices[: self._tail]
        self.indices = grown
        self._ibytes = memoryview(grown).cast("B")

    def _ensure_capacity(self, capacity: int) -> None:
        if capacity <= self.starts.size:
            return
        size = max(16, capacity, 2 * self.starts.size)
        for name in ("starts", "lengths", "caps"):
            old = getattr(self, name)
            grown = np.zeros(size, dtype=_INT)
            grown[: old.size] = old
            setattr(self, name, grown)

    def _rebuild(self, adj: Sequence, capacity: int) -> None:
        slack = self._min_slack
        size = max(16, capacity, self.starts.size)
        starts = np.zeros(size, dtype=_INT)
        lengths = np.zeros(size, dtype=_INT)
        caps = np.zeros(size, dtype=_INT)
        lens = lengths[:capacity]
        if capacity:
            lens[:] = np.fromiter(
                (len(adj[nid]) for nid in range(capacity)), dtype=_INT, count=capacity
            )
        caps[:capacity] = lens + slack
        np.cumsum(caps[: capacity - 1], out=starts[1:capacity])
        tail = int(caps[:capacity].sum())
        indices = np.empty(tail + 64, dtype=_INT)
        total = int(lens.sum())
        if total:
            # One C-level concatenation of every row, then a single scatter
            # from packed to slacked positions -- ~10x the per-row python
            # copy loop this replaces (rebuilds run at engine bootstrap and
            # at every compaction, so their constant matters too).
            packed = np.frombuffer(
                b"".join(memoryview(adj[nid]).cast("B") for nid in range(capacity)),
                dtype=_INT,
            )
            packed_starts = np.cumsum(lens) - lens
            destination = (
                np.arange(total, dtype=_INT)
                + np.repeat(starts[:capacity] - packed_starts, lens)
            )
            indices[destination] = packed
        self.starts, self.lengths, self.caps = starts, lengths, caps
        self.indices = indices
        self._ibytes = memoryview(indices).cast("B")
        self._tail = tail
        self._dead = 0
        self._dirty.clear()
        self._all_dirty = False
        self.generation += 1
        self.rebuilds += 1

    # ------------------------------------------------------------------
    # Vectorized level kernels
    # ------------------------------------------------------------------
    def _gather(self, rows: np.ndarray):
        """Flatten the adjacency of ``rows``: (neighbor ids, segment ids, lens).

        ``seg[k]`` is the position in ``rows`` whose adjacency produced
        ``neigh[k]`` -- the segment key every reduce below groups by.
        """
        lens = self.lengths[rows]
        total = int(lens.sum())
        if total == 0:
            empty = np.empty(0, dtype=_INT)
            return empty, empty, lens
        seg = np.repeat(np.arange(rows.size, dtype=_INT), lens)
        offsets = np.cumsum(lens) - lens
        pos = (
            np.arange(total, dtype=_INT)
            - np.repeat(offsets, lens)
            + np.repeat(self.starts[rows], lens)
        )
        return self.indices[pos], seg, lens

    def desired_codes(
        self, frontier: np.ndarray, state: np.ndarray, prio: np.ndarray
    ) -> np.ndarray:
        """Whole-level MIS-invariant evaluation as one gather + segment-reduce.

        Returns one :mod:`repro.parallel.kernels` ``DESIRED_*`` code per
        frontier entry: a node wants to be in the MIS exactly when no
        earlier-in-``pi`` neighbor is currently in.  Priorities compare as
        float64 here; rows where an in-MIS neighbor *ties* the float come
        back :data:`DESIRED_UNCERTAIN` and the caller re-evaluates them with
        full python keys -- the same escape discipline as the worker
        kernels, and what keeps this path bit-identical to the serial walk.
        A blocked row stays :data:`DESIRED_OUT` even if another neighbor
        ties (an earlier in-MIS neighbor decides regardless of the tie).
        """
        codes = np.full(frontier.size, DESIRED_IN, dtype=np.uint8)
        neigh, seg, lens = self._gather(frontier)
        #: Edges this evaluation gathered == the frontier's total degree;
        #: the engine reads it for its ``update_work`` counter instead of
        #: re-gathering ``lengths[frontier]``.
        self.last_eval_edges = int(neigh.size)
        if neigh.size == 0:
            return codes
        in_mis = state[neigh] != 0
        pn = prio[neigh]
        ps = np.repeat(prio[frontier], lens)
        tied = in_mis & (pn == ps)
        if tied.any():  # exact float collisions are rare; skip the reduce
            codes[np.bincount(seg[tied], minlength=frontier.size) > 0] = (
                DESIRED_UNCERTAIN
            )
        blocked = np.bincount(seg[in_mis & (pn < ps)], minlength=frontier.size)
        codes[blocked > 0] = DESIRED_OUT
        return codes

    def later_frontier(
        self, flipped: np.ndarray, prio: np.ndarray, keys: List
    ) -> np.ndarray:
        """Deduplicated later-in-``pi`` neighborhood of the flipped set.

        CSR-sliced replacement for the per-row ``frombuffer``/``concatenate``
        build: one gather over the flipped rows, one mask, and a scatter
        dedup (a boolean plane beats ``np.unique``'s sort on wide levels).
        Exact float ties fall back to the engine's full-key list ``keys``.
        """
        neigh, seg, lens = self._gather(flipped)
        if neigh.size == 0:
            return np.empty(0, dtype=_INT)
        ps = np.repeat(prio[flipped], lens)
        pn = prio[neigh]
        later = pn > ps
        ties = np.flatnonzero(pn == ps)
        if ties.size:
            src = flipped[seg]
            for p in ties:
                later[p] = keys[int(neigh[p])] > keys[int(src[p])]
        seen = np.zeros(self.starts.size, dtype=bool)
        seen[neigh[later]] = True
        return np.flatnonzero(seen)

    # ------------------------------------------------------------------
    # Decode / export (tests and the FFI slot)
    # ------------------------------------------------------------------
    def row(self, nid: int) -> np.ndarray:
        """Live entries of row ``nid`` (a view; do not mutate)."""
        start = int(self.starts[nid])
        return self.indices[start : start + int(self.lengths[nid])]

    def decode(self, capacity: int) -> List[List[int]]:
        """The mirrored adjacency as plain lists (property-test oracle)."""
        return [self.row(nid).tolist() for nid in range(capacity)]

    def export_planes(
        self, capacity: int, prio: np.ndarray, state: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """The frozen five-plane layout (see the module docstring).

        ``prio``/``state`` are the engine's id-indexed planes, passed through
        so one dict hands an FFI backend everything it reads.  Arrays are
        views over live storage: valid until the next mutation or rebuild
        (watch :attr:`generation`).
        """
        return {
            "starts": self.starts[:capacity],
            "lengths": self.lengths[:capacity],
            "caps": self.caps[:capacity],
            "indices": self.indices[: self._tail],
            "prio": prio[:capacity],
            "state": state[:capacity],
        }

    def check_layout(self, capacity: int) -> None:
        """Assert the slab bookkeeping is sound (test helper).

        Every row slab lies within ``[0, tail)``, slabs are pairwise
        disjoint, lengths fit their caps, and the dead counter equals the
        positions no slab covers.
        """
        assert capacity <= self.starts.size, "plane shorter than capacity"
        starts = self.starts[:capacity]
        lengths = self.lengths[:capacity]
        caps = self.caps[:capacity]
        assert bool((lengths >= 0).all() and (caps >= lengths).all()), "length > cap"
        assert bool((starts >= 0).all()), "negative slab start"
        assert bool(((starts + caps) <= self._tail).all()), "slab past the tail"
        assert self._tail <= self.indices.size, "tail past physical storage"
        order = np.argsort(starts, kind="stable")
        prev_end = 0
        covered = 0
        for nid in order:
            cap = int(caps[nid])
            if cap == 0:
                continue
            assert int(starts[nid]) >= prev_end, "overlapping row slabs"
            prev_end = int(starts[nid]) + cap
            covered += cap
        assert self._dead == self._tail - covered, "dead-space counter out of sync"
