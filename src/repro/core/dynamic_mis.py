"""User-facing dynamic MIS maintainer built on the template engine.

:class:`DynamicMIS` is the library's primary sequential-semantics API: it
consumes :class:`~repro.workloads.changes.TopologyChange` events (or the
direct ``insert_edge`` / ``delete_edge`` / ``insert_node`` / ``delete_node``
calls) and keeps a maximal independent set equal to the random-greedy MIS of
the current graph under a fixed random order.

It wraps :class:`~repro.core.template.TemplateEngine` and additionally

* accumulates per-change statistics (influenced-set sizes, adjustments,
  propagation depths) in a :class:`MaintainerStatistics` record used by the
  experiments, and
* exposes the correlation-clustering view of the MIS (every MIS node is a
  cluster center; every other node joins its earliest MIS neighbor), which is
  the paper's 3-approximation for correlation clustering.

The distributed protocols of :mod:`repro.distributed` provide the same
outputs under message-passing constraints; this class is the reference they
are validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set

from repro.core.fast_engine import FastEngine
from repro.core.priorities import PriorityAssigner, RandomPriorityAssigner
from repro.core.template import TemplateEngine, UpdateReport
from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    TopologyChange,
)

Node = Hashable

#: Selectable engine backends for :class:`DynamicMIS`.
ENGINE_NAMES = ("template", "fast")


@dataclass
class MaintainerStatistics:
    """Aggregated per-change statistics collected by :class:`DynamicMIS`.

    The lists are aligned: entry ``i`` of each list describes the ``i``-th
    applied change.
    """

    influenced_sizes: List[int] = field(default_factory=list)
    adjustments: List[int] = field(default_factory=list)
    propagation_depths: List[int] = field(default_factory=list)
    state_flips: List[int] = field(default_factory=list)
    update_work: List[int] = field(default_factory=list)
    change_kinds: List[str] = field(default_factory=list)

    def record(self, report: UpdateReport) -> None:
        """Append the numbers of one :class:`UpdateReport`."""
        self.influenced_sizes.append(report.influenced_size)
        self.adjustments.append(report.num_adjustments)
        self.propagation_depths.append(report.num_levels)
        self.state_flips.append(report.state_flips)
        self.update_work.append(report.update_work)
        self.change_kinds.append(report.change_type)

    @property
    def num_changes(self) -> int:
        """Number of changes applied so far."""
        return len(self.adjustments)

    def mean_influenced_size(self) -> float:
        """Sample mean of ``|S|`` (the Theorem 1 quantity)."""
        return _mean(self.influenced_sizes)

    def mean_adjustments(self) -> float:
        """Sample mean of the adjustment complexity."""
        return _mean(self.adjustments)

    def mean_propagation_depth(self) -> float:
        """Sample mean of the propagation depth (direct-implementation rounds)."""
        return _mean(self.propagation_depths)

    def mean_update_work(self) -> float:
        """Sample mean of neighbor inspections per change (sequential update time)."""
        return _mean(self.update_work)

    def max_adjustments(self) -> int:
        """Worst single-change adjustment count."""
        return max(self.adjustments) if self.adjustments else 0


class DynamicMIS:
    """Maintain a random-greedy MIS under fully dynamic topology changes.

    Parameters
    ----------
    seed:
        Seed of the random order ``pi`` (ignored if ``priorities`` is given).
        Accepts a plain ``int`` or a ``numpy.random.Generator`` /
        ``SeedSequence`` (see :func:`repro.core.rng.normalize_seed`).
    priorities:
        Custom priority assigner.  Passing a
        :class:`~repro.core.priorities.DeterministicPriorityAssigner` turns
        this class into the deterministic greedy baseline used by the
        lower-bound experiment.
    initial_graph:
        Optional starting graph whose MIS is computed upfront.
    engine:
        Backend selection: ``"template"`` (default) is the paper-shaped
        dict/set :class:`~repro.core.template.TemplateEngine`;  ``"fast"`` is
        the array-backed :class:`~repro.core.fast_engine.FastEngine` with
        identical outputs (machine-checked by ``tests/conformance/``) and far
        lower constant factors.

    Examples
    --------
    >>> from repro.graph.generators import path_graph
    >>> maintainer = DynamicMIS(seed=7, initial_graph=path_graph(5), engine="fast")
    >>> sorted(maintainer.mis())  # doctest: +SKIP
    [0, 2, 4]
    >>> report = maintainer.delete_node(2)
    >>> maintainer.verify()
    """

    def __init__(
        self,
        seed: int = 0,
        priorities: Optional[PriorityAssigner] = None,
        initial_graph: Optional[DynamicGraph] = None,
        engine: str = "template",
    ) -> None:
        if priorities is None:
            priorities = RandomPriorityAssigner(seed)  # normalizes the seed itself
        if engine == "template":
            self._engine = TemplateEngine(priorities=priorities, initial_graph=initial_graph)
        elif engine == "fast":
            self._engine = FastEngine(priorities=priorities, initial_graph=initial_graph)
        else:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}")
        self._engine_name = engine
        self._statistics = MaintainerStatistics()

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def engine_name(self) -> str:
        """The backend in use (``"template"`` or ``"fast"``)."""
        return self._engine_name

    @property
    def graph(self) -> DynamicGraph:
        """The current graph (do not mutate directly).

        For the fast backend this is a read-only
        :class:`~repro.core.fast_engine.FastGraphView` with the same read API.
        """
        return self._engine.graph

    @property
    def priorities(self) -> PriorityAssigner:
        """The order ``pi`` in use."""
        return self._engine.priorities

    @property
    def statistics(self) -> MaintainerStatistics:
        """Per-change statistics accumulated so far."""
        return self._statistics

    def mis(self) -> Set[Node]:
        """The current maximal independent set."""
        return self._engine.mis()

    def states(self) -> Dict[Node, bool]:
        """Copy of the full output map ``node -> in MIS?``."""
        return self._engine.states()

    def in_mis(self, node: Node) -> bool:
        """Whether ``node`` is currently in the MIS."""
        return self._engine.in_mis(node)

    def verify(self) -> None:
        """Assert the MIS invariant holds everywhere (used heavily in tests)."""
        self._engine.verify()

    def clustering(self) -> Dict[Node, Node]:
        """The correlation clustering induced by the current MIS.

        Every MIS node is its own cluster center; every non-MIS node joins the
        cluster of its earliest (smallest random ID) MIS neighbor.  This is
        the paper's 3-approximation for correlation clustering, maintained
        dynamically for free because it is a local function of the MIS and the
        IDs.  Delegates to the engine backend (both backends implement
        ``clustering()`` as part of the common interface).
        """
        return self._engine.clustering()

    # ------------------------------------------------------------------
    # Topology changes
    # ------------------------------------------------------------------
    def apply(self, change: TopologyChange) -> UpdateReport:
        """Apply one topology-change event and return its report."""
        if isinstance(change, EdgeInsertion):
            return self.insert_edge(change.u, change.v)
        if isinstance(change, EdgeDeletion):
            return self.delete_edge(change.u, change.v)
        if isinstance(change, (NodeInsertion, NodeUnmuting)):
            return self.insert_node(change.node, change.neighbors)
        if isinstance(change, NodeDeletion):
            return self.delete_node(change.node)
        raise TypeError(f"unknown change type: {change!r}")

    def apply_sequence(self, changes: Iterable[TopologyChange]) -> List[UpdateReport]:
        """Apply a whole change sequence, returning one report per change."""
        return [self.apply(change) for change in changes]

    def apply_batch(self, changes: Iterable[TopologyChange]):
        """Apply a whole batch of changes atomically (Section 6 open question).

        The graph is updated for every change first and the MIS invariant is
        restored by a single propagation wave afterwards.  Returns a
        :class:`repro.core.batch.BatchUpdateReport`.  Batch reports are not
        folded into :attr:`statistics` (which is per single change); callers
        interested in batch costs read the returned report directly.
        """
        from repro.core.batch import apply_batch

        if not getattr(self._engine, "supports_batch", False):
            raise NotImplementedError(
                f"apply_batch is not supported by engine={self._engine_name!r}; a "
                "vectorized batch apply for the fast engine is a ROADMAP open item"
            )
        return apply_batch(self._engine, list(changes))

    def insert_edge(self, u: Node, v: Node) -> UpdateReport:
        """Insert edge ``{u, v}``."""
        return self._record(self._engine.insert_edge(u, v))

    def delete_edge(self, u: Node, v: Node) -> UpdateReport:
        """Delete edge ``{u, v}``."""
        return self._record(self._engine.delete_edge(u, v))

    def insert_node(self, node: Node, neighbors: Iterable[Node] = ()) -> UpdateReport:
        """Insert ``node`` with edges to existing ``neighbors``."""
        return self._record(self._engine.insert_node(node, neighbors))

    def delete_node(self, node: Node) -> UpdateReport:
        """Delete ``node`` and its incident edges."""
        return self._record(self._engine.delete_node(node))

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _record(self, report: UpdateReport) -> UpdateReport:
        self._statistics.record(report)
        return report


def _mean(values: List[int]) -> float:
    return sum(values) / len(values) if values else 0.0
