"""User-facing dynamic MIS maintainer built on the template engine.

:class:`DynamicMIS` is the library's primary sequential-semantics API: it
consumes :class:`~repro.workloads.changes.TopologyChange` events (or the
direct ``insert_edge`` / ``delete_edge`` / ``insert_node`` / ``delete_node``
calls) and keeps a maximal independent set equal to the random-greedy MIS of
the current graph under a fixed random order.

It wraps an interchangeable :class:`~repro.core.engine_api.MISEngine`
backend (the paper-shaped :class:`~repro.core.template.TemplateEngine` by
default; any backend registered with
:func:`repro.core.engine_api.register_engine` by name) and additionally

* accumulates per-change statistics (influenced-set sizes, adjustments,
  propagation depths) in a :class:`MaintainerStatistics` record used by the
  experiments, and
* exposes the correlation-clustering view of the MIS (every MIS node is a
  cluster center; every other node joins its earliest MIS neighbor), which is
  the paper's 3-approximation for correlation clustering.

The distributed protocols of :mod:`repro.distributed` provide the same
outputs under message-passing constraints; this class is the reference they
are validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional, Set

from repro.core.engine_api import (
    BatchUpdateReport,
    EngineSpec,
    available_engines,
    create_engine,
    engine_spec_name,
)
from repro.core.priorities import PriorityAssigner, RandomPriorityAssigner
from repro.core.template import UpdateReport
from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    TopologyChange,
)

Node = Hashable


def __getattr__(name: str) -> Any:
    # ``ENGINE_NAMES`` derives from the backend registry (single source of
    # truth): backends registered after import -- compiled third-party slots,
    # test-only references -- appear here automatically.
    if name == "ENGINE_NAMES":
        return available_engines()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class MaintainerStatistics:
    """Aggregated per-change statistics collected by :class:`DynamicMIS`.

    Two aligned channels are kept:

    * the **single-change** lists (``influenced_sizes`` ... ``change_kinds``):
      entry ``i`` of each list describes the ``i``-th individually applied
      change;
    * the **per-batch** lists (``batch_sizes`` / ``batch_influenced_sizes`` /
      ``batch_adjustments`` / ``batch_levels``): entry ``j`` of each list
      describes the ``j``-th :meth:`DynamicMIS.apply_batch` call.  Batch
      costs are *not* folded into the single-change channel -- a batch is one
      atomic repair wave, so its numbers are not comparable per-change.
    """

    influenced_sizes: List[int] = field(default_factory=list)
    adjustments: List[int] = field(default_factory=list)
    propagation_depths: List[int] = field(default_factory=list)
    state_flips: List[int] = field(default_factory=list)
    update_work: List[int] = field(default_factory=list)
    change_kinds: List[str] = field(default_factory=list)
    batch_sizes: List[int] = field(default_factory=list)
    batch_influenced_sizes: List[int] = field(default_factory=list)
    batch_adjustments: List[int] = field(default_factory=list)
    batch_levels: List[int] = field(default_factory=list)

    def record(self, report: UpdateReport) -> None:
        """Append the numbers of one :class:`UpdateReport`."""
        self.influenced_sizes.append(report.influenced_size)
        self.adjustments.append(report.num_adjustments)
        self.propagation_depths.append(report.num_levels)
        self.state_flips.append(report.state_flips)
        self.update_work.append(report.update_work)
        self.change_kinds.append(report.change_type)

    def record_batch(self, report: BatchUpdateReport) -> None:
        """Append the numbers of one :class:`~repro.core.engine_api.BatchUpdateReport`."""
        self.batch_sizes.append(report.batch_size)
        self.batch_influenced_sizes.append(report.influenced_size)
        self.batch_adjustments.append(report.num_adjustments)
        self.batch_levels.append(report.num_levels)

    @property
    def num_changes(self) -> int:
        """Number of single changes applied so far (batches not included)."""
        return len(self.adjustments)

    @property
    def num_batches(self) -> int:
        """Number of batches applied so far."""
        return len(self.batch_sizes)

    @property
    def num_batched_changes(self) -> int:
        """Total number of changes applied through batches."""
        return sum(self.batch_sizes)

    def mean_batch_adjustments_per_change(self) -> float:
        """Mean adjustments per *individual batched change* (A2's quantity)."""
        total = self.num_batched_changes
        return sum(self.batch_adjustments) / total if total else 0.0

    def mean_influenced_size(self) -> float:
        """Sample mean of ``|S|`` (the Theorem 1 quantity)."""
        return _mean(self.influenced_sizes)

    def mean_adjustments(self) -> float:
        """Sample mean of the adjustment complexity."""
        return _mean(self.adjustments)

    def mean_propagation_depth(self) -> float:
        """Sample mean of the propagation depth (direct-implementation rounds)."""
        return _mean(self.propagation_depths)

    def mean_update_work(self) -> float:
        """Sample mean of neighbor inspections per change (sequential update time)."""
        return _mean(self.update_work)

    def max_adjustments(self) -> int:
        """Worst single-change adjustment count."""
        return max(self.adjustments) if self.adjustments else 0


class DynamicMIS:
    """Maintain a random-greedy MIS under fully dynamic topology changes.

    Parameters
    ----------
    seed:
        Seed of the random order ``pi`` (ignored if ``priorities`` is given).
        Accepts a plain ``int`` or a ``numpy.random.Generator`` /
        ``SeedSequence`` (see :func:`repro.core.rng.normalize_seed`).
    priorities:
        Custom priority assigner.  Passing a
        :class:`~repro.core.priorities.DeterministicPriorityAssigner` turns
        this class into the deterministic greedy baseline used by the
        lower-bound experiment.
    initial_graph:
        Optional starting graph whose MIS is computed upfront.
    engine:
        Backend selection, resolved through the registry of
        :mod:`repro.core.engine_api`; accepts

        * a **registered name** -- ``"template"`` (default, the paper-shaped
          dict/set :class:`~repro.core.template.TemplateEngine`), ``"fast"``
          (the array-backed :class:`~repro.core.fast_engine.FastEngine` with
          identical outputs, machine-checked by ``tests/conformance/``, and
          far lower constant factors), or any name added via
          :func:`repro.core.engine_api.register_engine`;
        * an **engine class or factory** callable as
          ``factory(priorities=..., initial_graph=...)``;
        * a **pre-built** :class:`~repro.core.engine_api.MISEngine`
          **instance** (``seed``/``priorities``/``initial_graph`` must then
          be left at their defaults -- the instance already owns them).

    Examples
    --------
    >>> from repro.graph.generators import path_graph
    >>> maintainer = DynamicMIS(seed=7, initial_graph=path_graph(5), engine="fast")
    >>> sorted(maintainer.mis())  # doctest: +SKIP
    [0, 2, 4]
    >>> report = maintainer.delete_node(2)
    >>> maintainer.verify()
    """

    def __init__(
        self,
        seed: int = 0,
        priorities: Optional[PriorityAssigner] = None,
        initial_graph: Optional[DynamicGraph] = None,
        engine: EngineSpec = "template",
    ) -> None:
        from repro.core.engine_api import MISEngine

        if isinstance(engine, MISEngine):
            if priorities is not None or initial_graph is not None or seed != 0:
                raise ValueError(
                    "a pre-built engine instance already owns its priorities and "
                    "graph; do not combine it with seed=/priorities=/initial_graph="
                )
            self._engine = create_engine(engine)
        else:
            if priorities is None:
                priorities = RandomPriorityAssigner(seed)  # normalizes the seed itself
            self._engine = create_engine(
                engine, priorities=priorities, initial_graph=initial_graph
            )
        self._engine_name = engine_spec_name(engine)
        self._statistics = MaintainerStatistics()

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def engine_name(self) -> str:
        """The backend in use (a registered name, or a derived display name)."""
        return self._engine_name

    @property
    def engine(self):
        """The underlying :class:`~repro.core.engine_api.MISEngine` backend."""
        return self._engine

    @property
    def graph(self) -> DynamicGraph:
        """The current graph (do not mutate directly).

        For the fast backend this is a read-only
        :class:`~repro.core.fast_engine.FastGraphView` with the same read API.
        """
        return self._engine.graph

    @property
    def priorities(self) -> PriorityAssigner:
        """The order ``pi`` in use."""
        return self._engine.priorities

    @property
    def statistics(self) -> MaintainerStatistics:
        """Per-change statistics accumulated so far."""
        return self._statistics

    def mis(self) -> Set[Node]:
        """The current maximal independent set."""
        return self._engine.mis()

    def states(self) -> Dict[Node, bool]:
        """Copy of the full output map ``node -> in MIS?``."""
        return self._engine.states()

    def in_mis(self, node: Node) -> bool:
        """Whether ``node`` is currently in the MIS."""
        return self._engine.in_mis(node)

    def verify(self) -> None:
        """Assert the MIS invariant holds everywhere (used heavily in tests)."""
        self._engine.verify()

    def clustering(self) -> Dict[Node, Node]:
        """The correlation clustering induced by the current MIS.

        Every MIS node is its own cluster center; every non-MIS node joins the
        cluster of its earliest (smallest random ID) MIS neighbor.  This is
        the paper's 3-approximation for correlation clustering, maintained
        dynamically for free because it is a local function of the MIS and the
        IDs.  Delegates to the engine backend (both backends implement
        ``clustering()`` as part of the common interface).
        """
        return self._engine.clustering()

    # ------------------------------------------------------------------
    # Topology changes
    # ------------------------------------------------------------------
    def apply(self, change: TopologyChange) -> UpdateReport:
        """Apply one topology-change event and return its report."""
        if isinstance(change, EdgeInsertion):
            return self.insert_edge(change.u, change.v)
        if isinstance(change, EdgeDeletion):
            return self.delete_edge(change.u, change.v)
        if isinstance(change, (NodeInsertion, NodeUnmuting)):
            return self.insert_node(change.node, change.neighbors)
        if isinstance(change, NodeDeletion):
            return self.delete_node(change.node)
        raise TypeError(f"unknown change type: {change!r}")

    def apply_sequence(self, changes: Iterable[TopologyChange]) -> List[UpdateReport]:
        """Apply a whole change sequence, returning one report per change."""
        return [self.apply(change) for change in changes]

    def apply_batch(self, changes: Iterable[TopologyChange]) -> BatchUpdateReport:
        """Apply a whole batch of changes atomically (Section 6 open question).

        The graph is updated for every change first and the MIS invariant is
        restored by a single repair wave afterwards; every backend implements
        this natively (:meth:`~repro.core.engine_api.MISEngine.apply_batch`).
        Returns a :class:`~repro.core.engine_api.BatchUpdateReport`; its
        per-batch costs are folded into :attr:`statistics` on the dedicated
        batch channel (``batch_sizes`` / ``batch_influenced_sizes`` /
        ``batch_adjustments`` / ``batch_levels``), separate from the
        single-change lists.
        """
        report = self._engine.apply_batch(list(changes))
        self._statistics.record_batch(report)
        return report

    def insert_edge(self, u: Node, v: Node) -> UpdateReport:
        """Insert edge ``{u, v}``."""
        return self._record(self._engine.insert_edge(u, v))

    def delete_edge(self, u: Node, v: Node) -> UpdateReport:
        """Delete edge ``{u, v}``."""
        return self._record(self._engine.delete_edge(u, v))

    def insert_node(self, node: Node, neighbors: Iterable[Node] = ()) -> UpdateReport:
        """Insert ``node`` with edges to existing ``neighbors``."""
        return self._record(self._engine.insert_node(node, neighbors))

    def delete_node(self, node: Node) -> UpdateReport:
        """Delete ``node`` and its incident edges."""
        return self._record(self._engine.delete_node(node))

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _record(self, report: UpdateReport) -> UpdateReport:
        self._statistics.record(report)
        return report


def _mean(values: List[int]) -> float:
    return sum(values) / len(values) if values else 0.0
