"""The formal engine contract: :class:`MISEngine` and the backend registry.

The library maintains the random-greedy MIS of a fully dynamic graph behind
*interchangeable* engine backends: the paper-shaped dict/set
:class:`~repro.core.template.TemplateEngine` and the array-backed
:class:`~repro.core.fast_engine.FastEngine` already share an informal
contract (machine-checked by ``tests/conformance/``).  This module makes that
contract formal so that third-party backends -- including compiled
Rust/Cython slots, a ROADMAP open item -- can plug in without touching any
core module:

* :class:`MISEngine` is the abstract base class every backend implements:
  the four single-change operations returning an update report, the
  batch-first :meth:`MISEngine.apply_batch` returning a
  :class:`BatchUpdateReport`, the read views (``mis()`` / ``states()`` /
  ``in_mis()`` / ``clustering()`` / ``graph`` / ``priorities``), the
  invariant check ``verify()``, and the :meth:`MISEngine.snapshot` /
  :meth:`MISEngine.restore` pair used by the differential harness to rewind
  an engine between replay variants.
* :func:`register_engine` / :func:`available_engines` / :func:`create_engine`
  form the registry: :class:`~repro.core.dynamic_mis.DynamicMIS` resolves
  its ``engine=...`` argument (a name, an engine class, or a pre-built
  instance) through here, the CLI sources its ``--engine`` choices from
  :func:`available_engines`, and the distributed simulators'
  ``verify(reference_engine=...)`` builds its reference through
  :func:`create_engine`.

A new backend is validated by pointing
:func:`repro.testing.differential.replay_differential` (and its batched
sibling :func:`~repro.testing.differential.replay_batch_differential`) at
its registered name next to ``"template"`` -- see the README's
"Engine backends" section for a worked example.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.registry import Registry, UnknownNameError

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports, no cycle
    from repro.core.priorities import PriorityAssigner
    from repro.graph.dynamic_graph import DynamicGraph

Node = Hashable


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class BatchUpdateReport:
    """Outcome of applying one batch of topology changes atomically.

    Every engine backend returns this report from
    :meth:`MISEngine.apply_batch`.  The scalar cost counters are first-class
    fields so that array-backed engines never have to materialize a dict/set
    propagation trace; the template engine additionally attaches its full
    :class:`~repro.core.influenced.InfluencePropagation` in
    :attr:`propagation` for callers that want the level-by-level detail.

    Attributes
    ----------
    changes:
        The changes of the batch, in the order they were given.
    seed_nodes:
        Nodes whose invariant was re-checked directly because a change
        touched them (the batch analogue of ``v*``).
    influenced_labels:
        The influenced set ``S`` of the batch: every node that changed state
        at some point of the repair wave.
    influenced_size:
        ``|S|`` of the batch.
    num_adjustments:
        Nodes whose final output differs from before the batch.
    num_levels:
        Depth of the repair wave (rounds of a direct distributed run).
    state_flips:
        Total individual state flips, counting repeats.
    update_work:
        Neighbor inspections performed by the repair wave.
    evaluations:
        Per-node invariant re-evaluations performed by the repair wave.
    propagation:
        Optional full propagation trace.  The template engine fills it; the
        fast engine leaves it ``None`` (keeping the trace would put dict/set
        churn back on the hot path).
    """

    changes: List[Any] = field(default_factory=list)
    seed_nodes: Set[Node] = field(default_factory=set)
    influenced_labels: FrozenSet[Node] = frozenset()
    influenced_size: int = 0
    num_adjustments: int = 0
    num_levels: int = 0
    state_flips: int = 0
    update_work: int = 0
    evaluations: int = 0
    propagation: Optional["InfluencePropagation"] = None

    @property
    def batch_size(self) -> int:
        """Number of changes in the batch."""
        return len(self.changes)

    @property
    def influenced_set(self) -> Set[Node]:
        """The influenced set ``S`` as a plain set (parity with UpdateReport)."""
        return set(self.influenced_labels)


#: Fields of a :class:`BatchUpdateReport` that every backend must agree on
#: (compared by the batched differential harness, mirroring
#: ``repro.testing.differential.REPORT_FIELDS`` for single changes).
BATCH_REPORT_FIELDS = (
    "batch_size",
    "influenced_size",
    "num_adjustments",
    "num_levels",
    "state_flips",
    "update_work",
    "evaluations",
)


@dataclass(frozen=True)
class EngineSnapshot:
    """Frozen copy of an engine's observable state, for :meth:`MISEngine.restore`.

    The snapshot is deliberately *label-level* (nodes, edges, output states
    and priority keys) rather than a dump of backend internals, so any
    backend can restore a snapshot taken from any other backend -- the
    differential harness relies on this to rewind engines between the
    batched and one-at-a-time replays of the same change sequence.
    """

    nodes: Tuple[Node, ...]
    edges: Tuple[Tuple[Node, Node], ...]
    states: Dict[Node, bool]
    priority_keys: Dict[Node, Tuple]

    @property
    def num_nodes(self) -> int:
        """Number of nodes captured in the snapshot."""
        return len(self.nodes)


# ----------------------------------------------------------------------
# The engine contract
# ----------------------------------------------------------------------
class MISEngine(ABC):
    """Abstract base class of every dynamic-MIS engine backend.

    An engine owns the current graph, the order ``pi`` (a
    :class:`~repro.core.priorities.PriorityAssigner`) and the output state of
    every node, and keeps the outputs equal to the random-greedy MIS of the
    current graph under ``pi`` across topology changes.  All backends must be
    *observably identical* under the same seed: same MIS sets, same report
    counters, same clustering views -- enforced by the differential
    conformance harness (:mod:`repro.testing.differential`).

    Single-change operations return an update report exposing at least the
    fields in :data:`repro.testing.differential.REPORT_FIELDS` plus
    ``influenced_set``; :meth:`apply_batch` returns a
    :class:`BatchUpdateReport`.
    """

    # -- topology changes ------------------------------------------------
    @abstractmethod
    def insert_edge(self, u: Node, v: Node) -> Any:
        """Insert edge ``{u, v}``, restore the invariant, return a report."""

    @abstractmethod
    def delete_edge(self, u: Node, v: Node) -> Any:
        """Delete edge ``{u, v}``, restore the invariant, return a report."""

    @abstractmethod
    def insert_node(self, node: Node, neighbors: Iterable[Node] = ()) -> Any:
        """Insert ``node`` with edges to existing ``neighbors``, return a report."""

    @abstractmethod
    def delete_node(self, node: Node) -> Any:
        """Delete ``node`` and its incident edges, return a report."""

    @abstractmethod
    def apply_batch(self, changes: Sequence[Any]) -> BatchUpdateReport:
        """Apply a whole batch of changes atomically (Section 6 open question).

        All graph deltas are applied first; the MIS invariant is then
        restored by a single repair wave seeded with every node whose
        invariant may have broken.  Must land on the same final states as
        applying the changes one at a time.
        """

    # -- read views ------------------------------------------------------
    @property
    @abstractmethod
    def graph(self):
        """The current graph (a :class:`~repro.graph.dynamic_graph.DynamicGraph`
        or a read-only view with the same read API).  Do not mutate directly."""

    @property
    @abstractmethod
    def priorities(self):
        """The order ``pi`` in use (a :class:`~repro.core.priorities.PriorityAssigner`)."""

    @abstractmethod
    def mis(self) -> Set[Node]:
        """The current maximal independent set (as labels)."""

    @abstractmethod
    def states(self) -> Dict[Node, bool]:
        """Copy of the full output map ``node -> in MIS?``."""

    @abstractmethod
    def in_mis(self, node: Node) -> bool:
        """Whether ``node`` is currently in the MIS."""

    @abstractmethod
    def clustering(self) -> Dict[Node, Node]:
        """Correlation-clustering view: every node -> its cluster center."""

    @abstractmethod
    def verify(self) -> None:
        """Assert the MIS invariant holds at every node (raise if violated)."""

    # -- snapshot / restore ----------------------------------------------
    def snapshot(self) -> EngineSnapshot:
        """Capture the engine's observable state as an :class:`EngineSnapshot`.

        The default implementation reads everything through the public views,
        so backends only need to override :meth:`restore`.
        """
        graph = self.graph
        priorities = self.priorities
        nodes = tuple(graph.nodes())
        return EngineSnapshot(
            nodes=nodes,
            edges=tuple(graph.edges()),
            states=dict(self.states()),
            priority_keys={node: tuple(priorities.key(node)) for node in nodes},
        )

    @abstractmethod
    def restore(self, snapshot: EngineSnapshot) -> None:
        """Reset the engine to a previously captured :class:`EngineSnapshot`.

        After ``restore(snap)`` the engine's graph, states and priority keys
        equal those at ``snapshot()`` time; subsequent changes behave as if
        the intervening ones never happened.  Cost counters of past reports
        are not rewound (reports are values, not engine state).
        """


#: What ``DynamicMIS(engine=...)`` accepts: a registered name, an engine
#: class (or factory callable), or a pre-built engine instance.
EngineSpec = Union[str, Callable[..., MISEngine], MISEngine]

#: Signature of a registered backend factory: keyword arguments
#: ``priorities`` (a PriorityAssigner) and ``initial_graph`` (a DynamicGraph
#: or None), returning a ready :class:`MISEngine`.
EngineFactory = Callable[..., MISEngine]


# ----------------------------------------------------------------------
# Registry (a thin wrapper over the shared repro.registry helper)
# ----------------------------------------------------------------------
class UnknownEngineError(UnknownNameError):
    """An engine name that is not in the registry (with a did-you-mean hint)."""

    def __init__(self, name: str, known: Sequence[str]) -> None:
        super().__init__("engine", name, known)


_REGISTRY = Registry("engine", error=UnknownEngineError)


def register_engine(name: str, factory: EngineFactory, overwrite: bool = False) -> None:
    """Register an engine backend under ``name``.

    ``factory`` must accept the keyword arguments ``priorities`` and
    ``initial_graph`` and return a ready :class:`MISEngine` (engine classes
    with that constructor signature qualify directly).  After registration
    the backend is selectable everywhere a name is: ``DynamicMIS(engine=name)``,
    the CLI's ``--engine``, the distributed ``verify(reference_engine=name)``
    and the differential harness's ``engines=(...)`` tuples.

    Parameters
    ----------
    name:
        Registry key.  Re-registering an existing name raises unless
        ``overwrite=True`` (guards against accidental shadowing of the
        built-in backends).
    factory:
        Engine class or factory callable.
    overwrite:
        Allow replacing an existing registration.
    """
    _REGISTRY.register(name, factory, overwrite=overwrite)


def unregister_engine(name: str) -> None:
    """Remove ``name`` from the registry (no-op if absent; mainly for tests)."""
    _REGISTRY.unregister(name)


def available_engines() -> Tuple[str, ...]:
    """The registered backend names, built-ins first, in registration order."""
    return _REGISTRY.names()


def get_engine_factory(name: str) -> EngineFactory:
    """The factory registered under ``name`` (raises :class:`UnknownEngineError`)."""
    return _REGISTRY.get(name)


def create_engine(
    spec: EngineSpec,
    priorities: "Optional[PriorityAssigner]" = None,
    initial_graph: "Optional[DynamicGraph]" = None,
) -> MISEngine:
    """Build (or pass through) an engine from an :data:`EngineSpec`.

    * a **string** is looked up in the registry and its factory called with
      ``priorities=`` / ``initial_graph=``;
    * a **class or callable** is called the same way (it does not need to be
      registered -- useful for one-off experimental backends);
    * a **pre-built instance** is returned as-is; ``priorities`` and
      ``initial_graph`` must then be ``None``, since the instance already
      owns its order and topology.
    """
    if isinstance(spec, MISEngine):
        if priorities is not None or initial_graph is not None:
            raise ValueError(
                "a pre-built engine instance already owns its priorities and "
                "graph; pass priorities/initial_graph only with a name or class"
            )
        return spec
    if isinstance(spec, str):
        factory = get_engine_factory(spec)
    elif callable(spec):
        factory = spec
    else:
        raise TypeError(
            f"engine must be a registered name, an engine class/factory, or a "
            f"MISEngine instance; got {spec!r}"
        )
    engine = factory(priorities=priorities, initial_graph=initial_graph)
    if not isinstance(engine, MISEngine):
        raise TypeError(
            f"engine factory {spec!r} returned {type(engine).__name__}, "
            "which is not a MISEngine"
        )
    return engine


def engine_spec_name(spec: EngineSpec) -> str:
    """Best-effort display name for an :data:`EngineSpec`.

    Registered names map to themselves; classes/factories and instances fall
    back to a registry reverse-lookup, then to the (lowercased) type name.
    """
    if isinstance(spec, str):
        return spec
    target = type(spec) if isinstance(spec, MISEngine) else spec
    for name, factory in _REGISTRY.items():
        if factory is target:
            return name
    return getattr(target, "__name__", type(spec).__name__).lower()


# ----------------------------------------------------------------------
# Built-in backends (lazy factories -- no circular imports)
# ----------------------------------------------------------------------
def _template_factory(
    priorities: "Optional[PriorityAssigner]" = None,
    initial_graph: "Optional[DynamicGraph]" = None,
) -> MISEngine:
    from repro.core.template import TemplateEngine

    return TemplateEngine(priorities=priorities, initial_graph=initial_graph)


def _fast_factory(
    priorities: "Optional[PriorityAssigner]" = None,
    initial_graph: "Optional[DynamicGraph]" = None,
) -> MISEngine:
    from repro.core.fast_engine import FastEngine

    return FastEngine(priorities=priorities, initial_graph=initial_graph)


def _fast_csr_factory(
    priorities: "Optional[PriorityAssigner]" = None,
    initial_graph: "Optional[DynamicGraph]" = None,
) -> MISEngine:
    """The fast engine with the incremental CSR mirror + vectorized wave.

    Degrades to a plain fast engine when numpy is unavailable (``csr=True``
    is a no-op then), so selecting ``"fast-csr"`` is always safe.
    """
    from repro.core.fast_engine import FastEngine

    return FastEngine(priorities=priorities, initial_graph=initial_graph, csr=True)


register_engine("template", _template_factory)
register_engine("fast", _fast_factory)
register_engine("fast-csr", _fast_csr_factory)

# Deferred import for type checkers only (avoids a cycle at runtime).
from typing import TYPE_CHECKING  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.influenced import InfluencePropagation
