"""Shared-memory parallel evaluation for the engines and simulators.

One :class:`~repro.parallel.pool.WorkerPool` abstraction serves both
parallel-friendly phases of the codebase -- the sequential engine's batched
repair wave and the synchronous simulators' per-round guard evaluation --
with a serial fallback that keeps every execution bit-identical to the
single-process code (machine-checked by the differential harnesses).
"""

from repro.parallel.kernels import (
    DESIRED_IN,
    DESIRED_OUT,
    DESIRED_UNCERTAIN,
    GUARD_EARLIER_SETTLED,
    GUARD_KNOWS_ALL_KEYS,
    GUARD_NO_EARLIER_MIS,
    GUARD_NO_LATER_C,
    GUARD_UNCERTAIN,
    KERNELS,
)
from repro.parallel.pool import POOL_BACKENDS, WorkerPool

__all__ = [
    "WorkerPool",
    "POOL_BACKENDS",
    "KERNELS",
    "DESIRED_OUT",
    "DESIRED_IN",
    "DESIRED_UNCERTAIN",
    "GUARD_NO_EARLIER_MIS",
    "GUARD_NO_LATER_C",
    "GUARD_EARLIER_SETTLED",
    "GUARD_KNOWS_ALL_KEYS",
    "GUARD_UNCERTAIN",
]
