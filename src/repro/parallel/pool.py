"""A shared-memory worker pool for data-parallel evaluation phases.

The engines and simulators have exactly one embarrassingly parallel shape:
*evaluate a batch of independent items against a frozen snapshot of flat
arrays*.  :class:`WorkerPool` serves that shape and nothing else:

* the main process *publishes* named byte planes (state bytes, priority
  doubles, CSR adjacency, work-item ids) into ``multiprocessing``
  shared-memory segments;
* :meth:`run` splits ``[0, count)`` into contiguous chunks and has each
  worker process execute one registered kernel
  (:mod:`repro.parallel.kernels`) over its chunk, writing a disjoint slice
  of the output plane;
* the main process reads the output plane back -- no pickling of results,
  no locks (chunks are disjoint by construction).

The pool is an *accelerator, never a requirement*: :meth:`run` returns
``False`` whenever it did not execute (pool configured serial, the item
count below the engagement threshold, or a worker died), and every caller
keeps its serial loop as the fallback, so a broken pool degrades to the
bit-identical serial behaviour instead of failing the run.

Segments grow but never shrink: when a plane outgrows its segment a fresh,
larger segment replaces it (workers re-attach by name on the next run and
are told to drop the stale mapping); on POSIX an unlinked segment stays
valid for processes that still map it, so eager unlinking is safe.  Worker
processes are daemons fed over pipes -- they die with the main process, and
a :mod:`weakref` finalizer unlinks the segments even when nobody calls
:meth:`close`.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import sys
import traceback
import weakref
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

from repro.parallel.kernels import KERNELS

#: Start methods a :class:`WorkerPool` accepts.  ``"serial"`` builds a pool
#: that never engages -- the uniform way to configure parallelism off.
POOL_BACKENDS = ("fork", "spawn", "serial")

_SEGMENT_COUNTER = itertools.count()


def _segment_name(tag: str) -> str:
    return f"repro-{os.getpid()}-{tag}-{next(_SEGMENT_COUNTER)}"


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment by name without resource-tracker ownership.

    The main process owns segment lifetimes; a worker must never unlink one.
    Python 3.13 has ``track=False`` for exactly this.  Before 3.13 attaching
    re-registers the name with the resource tracker -- harmless here, because
    ``multiprocessing`` workers share the parent's tracker process and its
    registry is a set (the duplicate registration is a no-op and the parent's
    eventual unlink clears the single entry).  Explicitly *unregistering*
    from the worker would be wrong for the same reason: it would delete the
    parent's registration out from under it.
    """
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    return shared_memory.SharedMemory(name=name, create=False)


def _worker_main(connection) -> None:
    """Worker loop: attach planes by name, run kernels over ``[start, stop)``."""
    segments: Dict[str, shared_memory.SharedMemory] = {}
    try:
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            kernel_name, start, stop, table, drops, params = message
            for shm_name in drops:
                stale = segments.pop(shm_name, None)
                if stale is not None:
                    try:
                        stale.close()
                    except (BufferError, OSError):
                        pass
            planes: Dict[str, memoryview] = {}
            try:
                for logical, (shm_name, nbytes) in table.items():
                    segment = segments.get(shm_name)
                    if segment is None:
                        segment = _attach_segment(shm_name)
                        segments[shm_name] = segment
                    planes[logical] = segment.buf[:nbytes]
                KERNELS[kernel_name](planes, start, stop, params)
                reply: Tuple = ("ok", start, stop)
            except BaseException:
                reply = ("error", traceback.format_exc())
            finally:
                for view in planes.values():  # repro-lint: determinism -- releasing views; order has no replay effect
                    try:
                        view.release()
                    except BufferError:
                        pass
            try:
                connection.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        for segment in segments.values():  # repro-lint: determinism -- closing handles; order has no replay effect
            try:
                segment.close()
            except (BufferError, OSError):
                pass
        try:
            connection.close()
        except OSError:
            pass


def _release_resources(processes: List, connections: List, segments: Dict) -> None:
    """Finalizer body: tear down workers and unlink every live segment.

    A module-level function on purpose: the :mod:`weakref` finalizer must not
    capture the pool (that would keep it alive forever).
    """
    for connection in connections:
        try:
            connection.send(None)
        except (BrokenPipeError, OSError):
            pass
    for process in processes:
        process.join(timeout=1.0)
        if process.is_alive():
            process.terminate()
    for connection in connections:
        try:
            connection.close()
        except OSError:
            pass
    for segment, unlinked in segments.values():  # repro-lint: determinism -- teardown; order has no replay effect
        try:
            segment.close()
        except (BufferError, OSError):
            pass
        if not unlinked:
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass
    processes.clear()
    connections.clear()
    segments.clear()


class WorkerPool:
    """Shared-memory pool of kernel workers with a built-in serial fallback.

    Parameters
    ----------
    workers:
        Worker process count.  ``<= 1`` makes the pool permanently serial
        (it never starts a process and :meth:`run` always returns ``False``).
    min_chunk:
        Minimum work items per chunk; a run engages only when ``count >=
        2 * min_chunk``, so tiny frontiers never pay dispatch overhead.
    backend:
        ``"fork"`` (default -- workers inherit the interpreter state),
        ``"spawn"`` (fresh interpreters; slower start, maximally portable)
        or ``"serial"`` (never engage, regardless of ``workers``).
    """

    def __init__(
        self, workers: int = 0, min_chunk: int = 256, backend: str = "fork"
    ) -> None:
        if backend not in POOL_BACKENDS:
            raise ValueError(
                f"unknown pool backend {backend!r}; known backends: {POOL_BACKENDS}"
            )
        workers = int(workers)
        min_chunk = int(min_chunk)
        if min_chunk < 1:
            raise ValueError(f"min_chunk must be at least 1, got {min_chunk}")
        self._backend = backend
        self._num_workers = max(0, workers)
        self._min_chunk = min_chunk
        self._serial = backend == "serial" or workers <= 1
        self._broken = False
        self._started = False
        self._processes: List = []
        self._connections: List = []
        # logical name -> [segment, used nbytes]; retired segments move to
        # _segments under their own shm name with unlinked=True until close.
        self._planes: Dict[str, List] = {}
        self._segments: Dict[str, List] = {}  # shm name -> [segment, unlinked]
        self._pending_drops: List[List[str]] = []
        self.tasks_run = 0
        self.last_error: Optional[str] = None
        self._finalizer = weakref.finalize(
            self, _release_resources, self._processes, self._connections, self._segments
        )

    # -- configuration ----------------------------------------------------
    @property
    def workers(self) -> int:
        """Configured worker count (0/1 means serial)."""
        return self._num_workers

    @property
    def min_chunk(self) -> int:
        """Minimum work items per chunk."""
        return self._min_chunk

    @property
    def backend(self) -> str:
        """The configured start method (``"fork"``, ``"spawn"`` or ``"serial"``)."""
        return self._backend

    @property
    def broken(self) -> bool:
        """True once a worker failed; the pool stays serial from then on."""
        return self._broken

    def engaged(self, count: int) -> bool:
        """Would :meth:`run` actually parallelise ``count`` work items?"""
        return (
            not self._serial and not self._broken and count >= 2 * self._min_chunk
        )

    # -- plane management -------------------------------------------------
    def ensure(self, name: str, nbytes: int) -> memoryview:
        """A writable view of at least ``nbytes`` for plane ``name``.

        Grows the backing segment when needed (the old one is retired and
        unlinked; attached workers are told to drop it on their next run).
        The returned view is exactly ``nbytes`` long -- write, then let it
        go out of scope before the plane can grow again.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"plane {name!r} needs a non-negative size, got {nbytes}")
        plane = self._planes.get(name)
        if plane is not None and plane[0].size >= nbytes:
            plane[1] = nbytes
            return plane[0].buf[:nbytes]
        capacity = max(4096, nbytes)
        if plane is not None:
            capacity = max(capacity, 2 * plane[0].size)
            self._retire(plane[0])
        capacity = (capacity + 4095) // 4096 * 4096
        segment = shared_memory.SharedMemory(
            name=_segment_name(name), create=True, size=capacity
        )
        self._segments[segment.name] = [segment, False]
        self._planes[name] = [segment, nbytes]
        return segment.buf[:nbytes]

    def publish(self, name: str, data) -> None:
        """Copy ``data`` (any bytes-like) into plane ``name``, growing it."""
        data = memoryview(data).cast("B")
        view = self.ensure(name, len(data))
        view[:] = data

    def view(self, name: str) -> memoryview:
        """The current used-size view of plane ``name`` (e.g. an output)."""
        plane = self._planes[name]
        return plane[0].buf[: plane[1]]

    def _retire(self, segment: shared_memory.SharedMemory) -> None:
        entry = self._segments.get(segment.name)
        if entry is not None and not entry[1]:
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass
            entry[1] = True
        for drops in self._pending_drops:
            drops.append(segment.name)

    # -- execution --------------------------------------------------------
    def _start(self) -> bool:
        if self._started:
            return True
        try:
            context = multiprocessing.get_context(self._backend)
            for _ in range(self._num_workers):
                ours, theirs = context.Pipe(duplex=True)
                process = context.Process(
                    target=_worker_main, args=(theirs,), daemon=True
                )
                process.start()
                theirs.close()
                self._processes.append(process)
                self._connections.append(ours)
                self._pending_drops.append([])
        except (OSError, ValueError) as error:
            self._mark_broken(f"could not start workers: {error}")
            return False
        self._started = True
        return True

    def _mark_broken(self, message: str) -> None:
        self._broken = True
        self.last_error = message

    def run(self, kernel: str, count: int, params: Optional[Dict[str, Any]] = None) -> bool:
        """Run ``kernel`` over ``[0, count)`` across the workers.

        Returns ``True`` when every chunk completed (output planes are ready
        to read) and ``False`` when the pool did not execute -- disengaged,
        serial, or broken mid-run -- in which case the caller must fall back
        to its serial evaluation.  A worker failure permanently breaks the
        pool (``last_error`` carries the traceback); partial output-plane
        writes are harmless because ``False`` means "do not read them".
        """
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; known kernels: {tuple(KERNELS)}"
            )
        if not self.engaged(count) or not self._start():
            return False
        table = {
            name: (plane[0].name, plane[1]) for name, plane in self._planes.items()
        }
        num_chunks = min(self._num_workers, max(1, count // self._min_chunk))
        base, extra = divmod(count, num_chunks)
        sent: List[int] = []
        start = 0
        try:
            for index in range(num_chunks):
                stop = start + base + (1 if index < extra else 0)
                drops = self._pending_drops[index]
                self._connections[index].send(
                    (kernel, start, stop, table, list(drops), params or {})
                )
                drops.clear()
                sent.append(index)
                start = stop
        except (BrokenPipeError, OSError) as error:
            self._mark_broken(f"worker pipe failed: {error}")
        failure: Optional[str] = None
        for index in sent:
            try:
                reply = self._connections[index].recv()
            except (EOFError, OSError) as error:
                failure = f"worker {index} died: {error}"
                continue
            if reply[0] != "ok":
                failure = reply[1]
        if self._broken:
            return False
        if failure is not None:
            self._mark_broken(failure)
            return False
        self.tasks_run += 1
        return True

    def close(self) -> None:
        """Stop the workers and unlink every segment (idempotent)."""
        self._finalizer()
        self._planes.clear()
        self._pending_drops.clear()
        self._started = False
        self._serial = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "serial" if self._serial else f"{self._num_workers}x{self._backend}"
        return f"WorkerPool({mode}, min_chunk={self._min_chunk}, broken={self._broken})"
