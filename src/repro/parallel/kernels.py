"""The evaluation kernels workers run over shared-memory planes.

A kernel is a plain function ``kernel(planes, start, stop, params)`` executed
inside a worker process of :class:`repro.parallel.pool.WorkerPool`.  ``planes``
maps logical plane names to :class:`memoryview` slices of shared-memory
segments the main process published; ``[start, stop)`` is the worker's
contiguous slice of the work items.  Kernels only *read* the input planes and
only *write* the rows ``[start, stop)`` of their output plane, so concurrent
workers never race.

Bit-identical parity with the serial evaluators is the contract, and floats
are the one hazard: node priorities are compared as doubles here, but the
serial code breaks priority *ties* with full Python key tuples, which cannot
cross a process boundary cheaply.  Whenever a comparison that could change
the outcome hits an exact priority tie, the kernel reports the item as
*uncertain* instead of guessing, and the main process re-evaluates just those
items with the full-key serial code.  Under the random-order priorities of
the paper ties are astronomically rare, so the escape hatch costs nothing in
practice while keeping the differential harnesses exact by construction.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

# --- engine_desired output codes (one byte per frontier entry) -------------
DESIRED_OUT = 0  #: definitely out of the MIS (an earlier in-MIS neighbor exists)
DESIRED_IN = 1  #: definitely in the MIS (no earlier in-MIS neighbor)
DESIRED_UNCERTAIN = 2  #: a priority tie decides -- re-evaluate serially

# --- network_guards output bits (one byte per active node) -----------------
GUARD_NO_EARLIER_MIS = 1  #: no known earlier neighbor is in the MIS
GUARD_NO_LATER_C = 2  #: no known later neighbor is in state C
GUARD_EARLIER_SETTLED = 4  #: every known earlier neighbor has settled (M / M-bar)
GUARD_KNOWS_ALL_KEYS = 8  #: a key is known for every neighbor slot
GUARD_UNCERTAIN = 128  #: a priority tie touched a guard -- re-evaluate serially

# Knowledge-state codes, mirrored from repro.distributed.fast_network (the
# kernel cannot import the simulator module: workers must stay import-light
# and the codes are a frozen wire format anyway).
_CODE_M = 0
_CODE_M_BAR = 1
_CODE_C = 2


def engine_desired(
    planes: Mapping[str, memoryview], start: int, stop: int, params: Dict[str, Any]
) -> int:
    """Frontier evaluation of the sequential engine's greedy invariant.

    For each frontier id, decide whether the node wants to be in the MIS:
    it does exactly when no neighbor earlier in ``pi`` is currently in.
    Mirrors ``FastEngine._desired`` with doubles-only comparisons; exact
    priority ties against an in-MIS neighbor yield :data:`DESIRED_UNCERTAIN`.

    Planes: ``e_state`` (uint8 per id), ``e_prio`` (float64 per id),
    ``e_indptr``/``e_indices`` (int64 CSR), ``e_frontier`` (int64 work
    items), ``e_out`` (uint8 per work item, written).
    """
    state = planes["e_state"]
    prio = planes["e_prio"].cast("d")
    indptr = planes["e_indptr"].cast("q")
    indices = planes["e_indices"].cast("q")
    frontier = planes["e_frontier"].cast("q")
    out = planes["e_out"]
    for i in range(start, stop):
        nid = frontier[i]
        pf = prio[nid]
        code = DESIRED_IN
        for pos in range(indptr[nid], indptr[nid + 1]):
            m = indices[pos]
            if state[m]:
                pm = prio[m]
                if pm < pf:
                    code = DESIRED_OUT
                    break
                if pm == pf:
                    code = DESIRED_UNCERTAIN
        out[i] = code
    return stop - start


def engine_desired_csr(
    planes: Mapping[str, memoryview], start: int, stop: int, params: Dict[str, Any]
) -> int:
    """:func:`engine_desired` over the incremental CSR mirror's slacked rows.

    Same evaluation and the same ``DESIRED_*`` escape discipline, but the
    adjacency planes are the :class:`repro.core.csr.CSRMirror` layout: row
    ``nid`` occupies ``e_indices[e_starts[nid] : e_starts[nid] +
    e_lengths[nid]]`` (rows carry slack, so there is no ``indptr``
    prefix-sum).  A ``csr=True`` engine publishes these planes straight from
    its mirror instead of re-flattening the ragged rows per wave.

    Planes: ``e_state`` (uint8 per id), ``e_prio`` (float64 per id),
    ``e_starts``/``e_lengths``/``e_indices`` (int64 slacked CSR),
    ``e_frontier`` (int64 work items), ``e_out`` (uint8 per work item,
    written).
    """
    state = planes["e_state"]
    prio = planes["e_prio"].cast("d")
    starts = planes["e_starts"].cast("q")
    lengths = planes["e_lengths"].cast("q")
    indices = planes["e_indices"].cast("q")
    frontier = planes["e_frontier"].cast("q")
    out = planes["e_out"]
    for i in range(start, stop):
        nid = frontier[i]
        pf = prio[nid]
        code = DESIRED_IN
        base = starts[nid]
        for pos in range(base, base + lengths[nid]):
            m = indices[pos]
            if state[m]:
                pm = prio[m]
                if pm < pf:
                    code = DESIRED_OUT
                    break
                if pm == pf:
                    code = DESIRED_UNCERTAIN
        out[i] = code
    return stop - start


def network_guards(
    planes: Mapping[str, memoryview], start: int, stop: int, params: Dict[str, Any]
) -> int:
    """The four per-node protocol guards, evaluated from knowledge rows.

    For each active node, compute the guard predicates the synchronous
    protocols branch on, as a bitmask over this module's ``GUARD_*`` bits.
    Mirrors the four ``FastNetworkCore`` guard methods: everything reads the
    node's *own* knowledge rows (what it heard about each neighbor slot)
    plus the static priority plane -- never another node's live state -- so
    the guards of all active nodes are independent.

    Planes: ``w_prio`` (float64 per id), ``w_indptr``/``w_indices`` (int64
    CSR), ``w_nstate``/``w_nkey`` (uint8 per CSR slot: heard state code and
    known-key flag), ``w_active`` (int64 work items), ``w_guards`` (uint8
    per work item, written).
    """
    prio = planes["w_prio"].cast("d")
    indptr = planes["w_indptr"].cast("q")
    indices = planes["w_indices"].cast("q")
    nstate = planes["w_nstate"]
    nkey = planes["w_nkey"]
    active = planes["w_active"].cast("q")
    out = planes["w_guards"]
    all_guards = (
        GUARD_NO_EARLIER_MIS
        | GUARD_NO_LATER_C
        | GUARD_EARLIER_SETTLED
        | GUARD_KNOWS_ALL_KEYS
    )
    for i in range(start, stop):
        nid = active[i]
        p = prio[nid]
        mask = all_guards
        for pos in range(indptr[nid], indptr[nid + 1]):
            if not nkey[pos]:
                mask &= ~GUARD_KNOWS_ALL_KEYS
                continue
            heard = nstate[pos]
            pm = prio[indices[pos]]
            if pm == p:
                # A tie decides via full keys for heard == M (guard 1),
                # heard == C (guards 2 and 3) and heard in {R, UNKNOWN}
                # (guard 3); only heard == M-bar is tie-proof.
                if heard != _CODE_M_BAR:
                    mask |= GUARD_UNCERTAIN
            elif pm < p:
                if heard == _CODE_M:
                    mask &= ~GUARD_NO_EARLIER_MIS
                if heard > _CODE_M_BAR:
                    mask &= ~GUARD_EARLIER_SETTLED
            else:
                if heard == _CODE_C:
                    mask &= ~GUARD_NO_LATER_C
        out[i] = mask
    return stop - start


#: Kernels workers may run, by wire name.  The table is module-level so a
#: spawned worker resolves names after a fresh import.
KERNELS: Dict[str, Any] = {
    "engine_desired": engine_desired,
    "engine_desired_csr": engine_desired_csr,
    "network_guards": network_guards,
}
