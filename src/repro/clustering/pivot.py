"""The sequential randomized pivot algorithm of Ailon, Charikar and Newman.

QuickCluster / KwikCluster: repeatedly pick a uniformly random still-unassigned
node as a pivot, form a cluster from the pivot and all of its unassigned
neighbors, and recurse on the rest.  Its expected cost is at most 3 times the
optimal correlation clustering.

The paper's observation is that taking the pivots in the order of a uniformly
random permutation produces *exactly* the clusters induced by the random
greedy MIS (the pivots are precisely the greedy MIS nodes and every other node
joins its earliest MIS neighbor).  :func:`pivot_clustering` implements the
classic algorithm independently so the test suite can verify that equivalence,
which is the correctness argument behind the dynamic 3-approximation.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Sequence

from repro.graph.dynamic_graph import DynamicGraph

Node = Hashable


def pivot_clustering(
    graph: DynamicGraph,
    seed: int = 0,
    pivot_order: Optional[Sequence[Node]] = None,
) -> Dict[Node, Node]:
    """Run the randomized pivot algorithm and return ``node -> cluster center``.

    Parameters
    ----------
    graph:
        The graph to cluster.
    seed:
        Seed for the uniformly random pivot order (ignored when
        ``pivot_order`` is given).
    pivot_order:
        Explicit node order to use for pivoting; the tests pass the greedy
        order here to check the equivalence with the MIS-induced clustering.
    """
    if pivot_order is None:
        order: List[Node] = sorted(graph.nodes(), key=repr)
        random.Random(seed).shuffle(order)
    else:
        order = list(pivot_order)
        missing = set(graph.nodes()) - set(order)
        if missing:
            raise ValueError(f"pivot order misses nodes: {sorted(missing, key=repr)[:5]}")

    assignment: Dict[Node, Node] = {}
    for pivot in order:
        if pivot in assignment:
            continue
        assignment[pivot] = pivot
        for other in graph.iter_neighbors(pivot):
            if other not in assignment:
                assignment[other] = pivot
    return assignment
