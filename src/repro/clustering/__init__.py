"""Correlation clustering on top of the dynamic MIS (paper, Sections 1.1 and 2).

The paper's algorithm yields, essentially for free, a dynamically maintained
3-approximation for correlation clustering: every MIS node is the center of a
cluster and every other node joins its earliest (smallest random ID) MIS
neighbor -- this is exactly the random-greedy pivot clustering of Ailon,
Charikar and Newman, whose expected cost is at most 3 times the optimum.

* :mod:`repro.clustering.correlation` -- the disagreement cost function, the
  clustering-from-MIS construction, an exact brute-force optimum for small
  graphs and simple reference clusterings.
* :mod:`repro.clustering.pivot` -- the sequential randomized pivot algorithm
  (the [Ailon et al.] baseline the paper's clustering coincides with).
* :mod:`repro.clustering.dynamic_clustering` -- the dynamically maintained
  clustering built on :class:`~repro.core.dynamic_mis.DynamicMIS`.
"""

from repro.clustering.correlation import (
    clustering_cost,
    clustering_from_mis,
    connected_component_clustering,
    exact_optimal_clustering,
    single_cluster_clustering,
    singleton_clustering,
)
from repro.clustering.pivot import pivot_clustering
from repro.clustering.dynamic_clustering import DynamicCorrelationClustering

__all__ = [
    "clustering_cost",
    "clustering_from_mis",
    "exact_optimal_clustering",
    "singleton_clustering",
    "single_cluster_clustering",
    "connected_component_clustering",
    "pivot_clustering",
    "DynamicCorrelationClustering",
]
