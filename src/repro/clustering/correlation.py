"""Correlation-clustering objective and reference clusterings.

The objective (paper, Section 2): a clustering ``C`` of the node set is
penalized one unit for every edge whose endpoints lie in *different* clusters
and one unit for every non-adjacent pair of nodes that lies in the *same*
cluster.  :func:`clustering_cost` computes that disagreement count; the other
functions provide the clusterings the experiments compare:

* the clustering induced by an MIS and the random IDs
  (:func:`clustering_from_mis`) -- the paper's 3-approximation,
* the exact optimum by brute force over set partitions
  (:func:`exact_optimal_clustering`, feasible up to ~12 nodes),
* trivial baselines (all singletons, one big cluster, connected components).
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.priorities import PriorityAssigner
from repro.graph.dynamic_graph import DynamicGraph

Node = Hashable
Clustering = Dict[Node, Node]


def clustering_cost(graph: DynamicGraph, clusters: Mapping[Node, Hashable]) -> int:
    """Number of disagreements of ``clusters`` on ``graph``.

    ``clusters`` maps every node to an arbitrary cluster label.  The cost is
    the number of edges between clusters plus the number of non-adjacent node
    pairs inside a cluster.
    """
    nodes = graph.nodes()
    for node in nodes:
        if node not in clusters:
            raise ValueError(f"node {node!r} has no cluster label")
    cost = 0
    # Edges whose endpoints disagree.
    for u, v in graph.edges():
        if clusters[u] != clusters[v]:
            cost += 1
    # Missing edges inside clusters.
    by_label: Dict[Hashable, List[Node]] = {}
    for node in nodes:
        by_label.setdefault(clusters[node], []).append(node)
    for members in by_label.values():
        for u, v in itertools.combinations(members, 2):
            if not graph.has_edge(u, v):
                cost += 1
    return cost


def clustering_from_mis(
    graph: DynamicGraph, mis_nodes: Iterable[Node], priorities: PriorityAssigner
) -> Clustering:
    """The paper's clustering: MIS nodes are centers, others join their earliest MIS neighbor."""
    centers: Clustering = {}
    mis_set: Set[Node] = set(mis_nodes)
    for node in graph.nodes():
        if node in mis_set:
            centers[node] = node
            continue
        mis_neighbors = [other for other in graph.iter_neighbors(node) if other in mis_set]
        if not mis_neighbors:
            raise ValueError(f"node {node!r} has no MIS neighbor; the given set is not maximal")
        centers[node] = priorities.earliest(mis_neighbors)
    return centers


def singleton_clustering(graph: DynamicGraph) -> Clustering:
    """Every node in its own cluster (cost = number of edges)."""
    return {node: node for node in graph.nodes()}


def single_cluster_clustering(graph: DynamicGraph) -> Clustering:
    """All nodes in one cluster (cost = number of missing edges)."""
    nodes = graph.nodes()
    if not nodes:
        return {}
    label = sorted(nodes, key=repr)[0]
    return {node: label for node in nodes}


def connected_component_clustering(graph: DynamicGraph) -> Clustering:
    """One cluster per connected component."""
    clustering: Clustering = {}
    for component in graph.connected_components():
        label = sorted(component, key=repr)[0]
        for node in component:
            clustering[node] = label
    return clustering


def exact_optimal_clustering(graph: DynamicGraph) -> Tuple[Clustering, int]:
    """Brute-force optimal correlation clustering (small graphs only).

    Enumerates all set partitions of the node set (Bell-number many), so it is
    only feasible for graphs with at most ~12 nodes; a :class:`ValueError` is
    raised beyond 13 nodes to avoid accidental blow-ups.

    Returns the optimal clustering and its cost.
    """
    nodes = sorted(graph.nodes(), key=repr)
    if len(nodes) > 13:
        raise ValueError("exact optimum is only computed for graphs with at most 13 nodes")
    if not nodes:
        return {}, 0

    best_cost: Optional[int] = None
    best_clustering: Clustering = {}
    for partition in _set_partitions(nodes):
        clustering: Clustering = {}
        for block in partition:
            label = block[0]
            for node in block:
                clustering[node] = label
        cost = clustering_cost(graph, clustering)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_clustering = clustering
    return best_clustering, int(best_cost or 0)


def _set_partitions(items: List[Node]):
    """Yield all set partitions of ``items`` as lists of blocks (lists of nodes)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for smaller in _set_partitions(rest):
        # Put ``first`` into an existing block.
        for index, block in enumerate(smaller):
            yield smaller[:index] + [[first] + block] + smaller[index + 1 :]
        # Or into its own new block.
        yield [[first]] + smaller


def cluster_sizes(clusters: Mapping[Node, Hashable]) -> Dict[Hashable, int]:
    """Histogram of cluster sizes (diagnostic helper used by tests and benches)."""
    sizes: Dict[Hashable, int] = {}
    for label in clusters.values():
        sizes[label] = sizes.get(label, 0) + 1
    return sizes
