"""Dynamically maintained 3-approximate correlation clustering.

:class:`DynamicCorrelationClustering` wraps a
:class:`~repro.core.dynamic_mis.DynamicMIS` and exposes the clustering induced
by the maintained MIS after every change.  Because the clustering is a purely
local function of the MIS and the random IDs (each non-MIS node looks at its
MIS neighbors and picks the earliest), maintaining it costs nothing beyond the
MIS maintenance itself: in the distributed implementation every node already
knows its neighbors' IDs and states, so its cluster assignment updates in zero
extra rounds and broadcasts.

History independence carries over: the distribution of the clustering depends
only on the current graph, so the adversary cannot bias the cluster structure
through its choice of topology changes.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

from repro.clustering.correlation import clustering_cost, clustering_from_mis
from repro.core.dynamic_mis import DynamicMIS
from repro.core.engine_api import EngineSpec
from repro.core.priorities import PriorityAssigner
from repro.core.template import UpdateReport
from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.changes import TopologyChange

Node = Hashable


class DynamicCorrelationClustering:
    """Maintain the random-greedy pivot clustering under topology changes.

    Parameters
    ----------
    seed:
        Seed for the random order (ignored when ``priorities`` is given).
    initial_graph:
        Optional starting graph.
    priorities:
        Custom priority assigner shared with other maintainers if desired.
    """

    def __init__(
        self,
        seed: int = 0,
        initial_graph: Optional[DynamicGraph] = None,
        priorities: Optional[PriorityAssigner] = None,
        engine: EngineSpec = "template",
    ) -> None:
        self._maintainer = DynamicMIS(
            seed=seed, priorities=priorities, initial_graph=initial_graph, engine=engine
        )

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        """The current graph."""
        return self._maintainer.graph

    @property
    def mis_maintainer(self) -> DynamicMIS:
        """The underlying dynamic MIS maintainer."""
        return self._maintainer

    def clusters(self) -> Dict[Node, Node]:
        """Current clustering as ``node -> cluster center`` (centers are MIS nodes)."""
        return clustering_from_mis(
            self._maintainer.graph, self._maintainer.mis(), self._maintainer.priorities
        )

    def cost(self) -> int:
        """Correlation-clustering disagreement cost of the current clustering."""
        return clustering_cost(self._maintainer.graph, self.clusters())

    def num_clusters(self) -> int:
        """Number of clusters (equals the MIS size)."""
        return len(self._maintainer.mis())

    def verify(self) -> None:
        """Assert the underlying MIS invariant (the clustering is derived from it)."""
        self._maintainer.verify()

    # ------------------------------------------------------------------
    # Topology changes
    # ------------------------------------------------------------------
    def apply(self, change: TopologyChange) -> UpdateReport:
        """Apply one topology change (delegates to the MIS maintainer)."""
        return self._maintainer.apply(change)

    def apply_sequence(self, changes: Iterable[TopologyChange]) -> List[UpdateReport]:
        """Apply a whole change sequence."""
        return self._maintainer.apply_sequence(changes)

    def insert_edge(self, u: Node, v: Node) -> UpdateReport:
        """Insert an edge."""
        return self._maintainer.insert_edge(u, v)

    def delete_edge(self, u: Node, v: Node) -> UpdateReport:
        """Delete an edge."""
        return self._maintainer.delete_edge(u, v)

    def insert_node(self, node: Node, neighbors: Iterable[Node] = ()) -> UpdateReport:
        """Insert a node with edges."""
        return self._maintainer.insert_node(node, neighbors)

    def delete_node(self, node: Node) -> UpdateReport:
        """Delete a node."""
        return self._maintainer.delete_node(node)
