"""Declarative scenario specifications (the "one front door" of the library).

Every experiment in this repository -- the CLI commands, the benchmark
sweeps, the differential conformance runs, the examples -- is an instance of
one shape: *a graph family + a stream of topology changes + a maintainer
backend + per-change measurements*.  A :class:`ScenarioSpec` captures that
shape as a plain value object with an exact dict/JSON round-trip, so a whole
experiment can be stored next to its results, replayed bit-identically on any
registered backend, swept as a ``spec x backend`` grid, or shipped in a bug
report.

A spec has four parts:

* :class:`GraphSpec` -- the starting (or, for build workloads, target) graph:
  a family name from :data:`repro.graph.generators.FAMILY_NAMES`, a node
  count, a seed and optional family parameters (e.g. an explicit
  ``edge_probability`` for ``erdos_renyi``).
* :class:`WorkloadSpec` -- the change stream.  The ``kind`` selects a
  generator from :mod:`repro.workloads.sequences` (or a saved trace file);
  together the kinds cover all six topology-change types of the paper's
  dynamic distributed model (Section 2): edge insertions, graceful and
  abrupt edge deletions, node insertions, graceful and abrupt node
  deletions (plus node unmuting, which the sequential template treats as an
  insertion).
* :class:`BackendSpec` -- which maintainer runs the scenario: the
  ``"sequential"`` runner drives a :class:`~repro.core.dynamic_mis.DynamicMIS`
  with any engine from the backend registry
  (:mod:`repro.core.engine_api`); the ``"protocol"`` runner drives a
  distributed simulator resolved through the network registry
  (:mod:`repro.distributed.network_api`).
* metric sinks -- names resolved through :mod:`repro.scenario.sinks`,
  attached as streaming observers by the :class:`~repro.scenario.session.Session`.

Specs are strict on decode: unknown keys and unknown enumeration values
raise :class:`ScenarioSpecError` with a did-you-mean hint, and backend names
are validated through the live registries, so a typo'd spec fails loudly
(and helpfully) instead of running the wrong experiment.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.engine_api import get_engine_factory
from repro.distributed.network_api import resolve_network
from repro.distributed.scheduler import scheduler_from_record
from repro.registry import did_you_mean
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    FAMILY_NAMES,
    erdos_renyi_graph,
    near_regular_graph,
    preferential_attachment_graph,
    random_geometric_graph,
    random_graph_family,
)
from repro.workloads.changes import TopologyChange
from repro.workloads.sequences import (
    build_sequence,
    edge_churn_sequence,
    mixed_churn_sequence,
    node_churn_sequence,
    sliding_window_sequence,
    teardown_sequence,
)

FORMAT = "repro-scenario-v1"

#: Workload kinds a spec may name.  The churn kinds generate forward from the
#: starting graph; ``build`` starts from the *empty* graph and assembles the
#: target described by :class:`GraphSpec`; ``teardown`` dismantles it;
#: ``trace`` replays a file saved with :func:`repro.workloads.trace.save_trace`;
#: ``sliding_window`` streams expiring-edge churn over its own node set
#: (``params: num_nodes, window_size``; the graph spec must be ``null``);
#: ``adaptive_adversary`` streams graceful deletions that always target the
#: *live backend's current MIS* (:class:`repro.workloads.adversary.AdaptiveAdversary`)
#: -- it cannot be pre-materialized and runs through a
#: :class:`~repro.scenario.session.Session` only.
WORKLOAD_KINDS = (
    "mixed_churn",
    "edge_churn",
    "node_churn",
    "build",
    "teardown",
    "trace",
    "sliding_window",
    "adaptive_adversary",
)

#: Runner kinds: sequential maintainer vs distributed protocol simulator.
RUNNER_NAMES = ("sequential", "protocol")


class ScenarioSpecError(ValueError):
    """A scenario spec that cannot be decoded, validated or materialized."""


# The shared registry hint builder doubles as the spec decoders' hint: one
# implementation, identical "; did you mean ...?" phrasing everywhere.
_did_you_mean = did_you_mean


def _check_choice(value: str, known: Sequence[str], what: str) -> str:
    if value not in known:
        raise ScenarioSpecError(
            f"unknown {what} {value!r}; known {what}s: {tuple(known)}"
            f"{_did_you_mean(value, known)}"
        )
    return value


def _check_keys(record: Mapping[str, Any], allowed: Sequence[str], context: str) -> None:
    if not isinstance(record, Mapping):
        raise ScenarioSpecError(f"{context} must be a mapping, got {record!r}")
    unknown = [key for key in record if key not in allowed]
    if unknown:
        shown = sorted(map(str, unknown))
        hints = "".join(_did_you_mean(key, allowed) for key in shown[:1])
        raise ScenarioSpecError(
            f"unknown key(s) {shown} in {context}; allowed keys: {tuple(allowed)}{hints}"
        )


def _check_int(value: Any, what: str, minimum: Optional[int] = None) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ScenarioSpecError(f"{what} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise ScenarioSpecError(f"{what} must be >= {minimum}, got {value}")
    return value


# ----------------------------------------------------------------------
# Graph part
# ----------------------------------------------------------------------
#: Families that accept an explicit parameter override (beyond the derived
#: defaults of :func:`repro.graph.generators.random_graph_family`).
_PARAMETRIC_FAMILIES = {
    "erdos_renyi": (erdos_renyi_graph, ("edge_probability",)),
    "preferential": (preferential_attachment_graph, ("edges_per_node",)),
    "geometric": (random_geometric_graph, ("radius",)),
    "near_regular": (near_regular_graph, ("degree",)),
}


#: Memo for :meth:`GraphSpec.build` (bounded FIFO; values are copied out).
_GRAPH_CACHE: Dict[Tuple, DynamicGraph] = {}
_GRAPH_CACHE_LIMIT = 8


@dataclass(frozen=True)
class GraphSpec:
    """The graph-family part of a scenario.

    ``params`` optionally overrides the family's derived default parameters
    (only for the parametric families: ``erdos_renyi`` takes
    ``edge_probability``, ``preferential`` takes ``edges_per_node``,
    ``geometric`` takes ``radius``, ``near_regular`` takes ``degree``); with
    an empty ``params`` the family defaults of
    :func:`~repro.graph.generators.random_graph_family` apply.
    """

    family: str = "erdos_renyi"
    nodes: int = 40
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)

    _FIELDS = ("family", "nodes", "seed", "params")

    def validate(self) -> None:
        """Raise :class:`ScenarioSpecError` if any field is out of range."""
        _check_choice(self.family, FAMILY_NAMES, "graph family")
        _check_int(self.nodes, "graph nodes", minimum=4)
        _check_int(self.seed, "graph seed")
        if self.params:
            if self.family not in _PARAMETRIC_FAMILIES:
                raise ScenarioSpecError(
                    f"graph family {self.family!r} takes no params, got {self.params!r}"
                )
            _, allowed = _PARAMETRIC_FAMILIES[self.family]
            _check_keys(self.params, allowed, f"graph params for family {self.family!r}")

    def build(self) -> DynamicGraph:
        """Materialize the graph (deterministic in ``family``/``nodes``/``seed``).

        Generation is memoized per spec (generators can be O(n^2); backend
        sweeps rebuild the same point repeatedly); every call returns a
        fresh copy, so callers may mutate their graph freely.
        """
        self.validate()
        try:
            key = (self.family, self.nodes, self.seed, tuple(sorted(self.params.items())))
            cached = _GRAPH_CACHE.get(key)
        except TypeError:  # unhashable param value: skip the cache
            key, cached = None, None
        if cached is None:
            if self.params:
                generator, _ = _PARAMETRIC_FAMILIES[self.family]
                cached = generator(self.nodes, seed=self.seed, **self.params)
            else:
                cached = random_graph_family(self.family, self.nodes, seed=self.seed)
            if key is not None:
                if len(_GRAPH_CACHE) >= _GRAPH_CACHE_LIMIT:
                    _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
                _GRAPH_CACHE[key] = cached
        return cached.copy()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (exact round-trip through :meth:`from_dict`)."""
        return {
            "family": self.family,
            "nodes": self.nodes,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "GraphSpec":
        """Decode (strict: unknown keys raise with a did-you-mean hint)."""
        _check_keys(record, cls._FIELDS, "graph spec")
        spec = cls(
            family=record.get("family", "erdos_renyi"),
            nodes=record.get("nodes", 40),
            seed=record.get("seed", 0),
            params=dict(record.get("params", {})),
        )
        spec.validate()
        return spec


# ----------------------------------------------------------------------
# Workload part
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """The change-stream part of a scenario (paper, Section 2).

    The generated stream exercises the paper's six distributed topology
    changes: ``edge_churn`` mixes edge insertions with graceful/abrupt edge
    deletions, ``node_churn`` mixes node insertions with graceful/abrupt
    node deletions, and ``mixed_churn`` interleaves all of them (the general
    fully dynamic workload).  ``build`` assembles the scenario's graph from
    the empty graph (node insertions, then edge insertions); ``teardown``
    dismantles it (edge and node deletions); ``trace`` replays a change
    sequence previously saved with :func:`repro.workloads.trace.save_trace`
    (which may additionally contain node unmutings -- the sixth change type).

    Two further kinds extend the spec space beyond the generators:
    ``sliding_window`` models link churn with expiring edges (edges arrive
    continuously and the oldest live edge is deleted once the window is
    full) over its own node set -- ``params`` must carry ``num_nodes`` and
    ``window_size`` and the scenario's graph spec must be ``null``;
    ``adaptive_adversary`` always deletes a node of the running backend's
    *current* MIS (the adversary the paper's oblivious model excludes, used
    by experiment E1 and the conformance suite).  Adaptive workloads are
    *dynamic*: they query the live backend, so they cannot be
    pre-materialized and stream only through a
    :class:`~repro.scenario.session.Session` (checkpoint/resume included --
    the adversary's RNG state rides along in the checkpoint).

    ``num_changes`` is required (> 0) for the churn, sliding-window and
    adaptive kinds and must be left at 0 for ``build``/``teardown``/
    ``trace``, whose length is derived.  ``params`` forwards extra keyword
    arguments to the sequence generator (e.g. ``insert_probability`` for
    ``edge_churn``).
    """

    kind: str = "mixed_churn"
    num_changes: int = 0
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    path: Optional[str] = None

    _FIELDS = ("kind", "num_changes", "seed", "params", "path")
    _CHURN_KINDS = ("mixed_churn", "edge_churn", "node_churn")
    #: Kinds whose length is the explicit ``num_changes`` (all others derive it).
    _SIZED_KINDS = _CHURN_KINDS + ("sliding_window", "adaptive_adversary")

    @property
    def is_dynamic(self) -> bool:
        """True iff the workload is generated against the live backend."""
        return self.kind == "adaptive_adversary"

    def validate(self) -> None:
        """Raise :class:`ScenarioSpecError` if any field is out of range."""
        _check_choice(self.kind, WORKLOAD_KINDS, "workload kind")
        _check_int(self.seed, "workload seed")
        _check_int(self.num_changes, "workload num_changes", minimum=0)
        if self.kind in self._SIZED_KINDS and self.num_changes <= 0:
            raise ScenarioSpecError(
                f"workload kind {self.kind!r} needs num_changes > 0"
            )
        if self.kind not in self._SIZED_KINDS and self.num_changes:
            raise ScenarioSpecError(
                f"workload kind {self.kind!r} derives its length; leave num_changes at 0"
            )
        if self.kind == "trace":
            if not self.path:
                raise ScenarioSpecError("workload kind 'trace' needs a path")
            if self.params:
                raise ScenarioSpecError("workload kind 'trace' takes no params")
        elif self.path is not None:
            raise ScenarioSpecError(f"workload kind {self.kind!r} takes no path")
        if self.kind == "sliding_window":
            _check_keys(
                self.params, ("num_nodes", "window_size"), "sliding_window params"
            )
            missing = [key for key in ("num_nodes", "window_size") if key not in self.params]
            if missing:
                raise ScenarioSpecError(
                    f"workload kind 'sliding_window' needs params {missing} "
                    "(it builds its own node set)"
                )
            _check_int(self.params["num_nodes"], "sliding_window num_nodes", minimum=2)
            _check_int(self.params["window_size"], "sliding_window window_size", minimum=1)
        elif self.kind == "adaptive_adversary" and self.params:
            raise ScenarioSpecError(
                "workload kind 'adaptive_adversary' takes no params "
                "(num_changes is the deletion budget, seed drives the adversary RNG)"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (exact round-trip through :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "num_changes": self.num_changes,
            "seed": self.seed,
            "params": dict(self.params),
            "path": self.path,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "WorkloadSpec":
        """Decode (strict: unknown keys raise with a did-you-mean hint).

        ``num_changes`` defaults to 100 for the explicitly sized kinds
        (churn, sliding-window, adaptive) when absent (matching the
        dataclass default used by :class:`~repro.scenario.spec.ScenarioSpec`);
        the derived kinds default to 0.
        """
        _check_keys(record, cls._FIELDS, "workload spec")
        kind = record.get("kind", "mixed_churn")
        default_changes = 100 if kind in cls._SIZED_KINDS else 0
        spec = cls(
            kind=kind,
            num_changes=record.get("num_changes", default_changes),
            seed=record.get("seed", 0),
            params=dict(record.get("params", {})),
            path=record.get("path"),
        )
        spec.validate()
        return spec


# ----------------------------------------------------------------------
# Backend part
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelSpec:
    """The parallel-evaluation part of a backend (see :mod:`repro.parallel`).

    ``workers`` is the worker process count (0 or 1 keeps everything
    serial); ``min_chunk`` the smallest per-worker slice worth dispatching
    (a frontier or active set engages the pool only at ``2 * min_chunk``
    items or more); ``backend`` the pool start method -- ``"fork"``,
    ``"spawn"`` or ``"serial"`` (never engage, regardless of ``workers``).

    Parallel evaluation never changes results -- pool or no pool, every run
    is bit-identical (machine-checked by the differential harnesses) -- so
    this block only tunes *where* the evaluation cycles are spent.
    """

    workers: int = 0
    min_chunk: int = 256
    backend: str = "fork"

    _FIELDS = ("workers", "min_chunk", "backend")
    _BACKENDS = ("fork", "spawn", "serial")

    def validate(self) -> None:
        """Raise :class:`ScenarioSpecError` on out-of-range fields."""
        _check_int(self.workers, "parallel workers", minimum=0)
        _check_int(self.min_chunk, "parallel min_chunk", minimum=1)
        _check_choice(self.backend, self._BACKENDS, "parallel backend")

    def build_pool(self):
        """A fresh :class:`~repro.parallel.pool.WorkerPool` for this spec.

        Returns ``None`` when the spec is effectively serial (no workers or
        the ``"serial"`` backend) -- callers then skip attaching entirely.
        """
        if self.workers <= 1 or self.backend == "serial":
            return None
        from repro.parallel.pool import WorkerPool

        return WorkerPool(
            workers=self.workers, min_chunk=self.min_chunk, backend=self.backend
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (exact round-trip through :meth:`from_dict`)."""
        return {
            "workers": self.workers,
            "min_chunk": self.min_chunk,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "ParallelSpec":
        """Decode (strict: unknown keys raise with a did-you-mean hint)."""
        _check_keys(record, cls._FIELDS, "parallel spec")
        spec = cls(
            workers=record.get("workers", 0),
            min_chunk=record.get("min_chunk", 256),
            backend=record.get("backend", "fork"),
        )
        spec.validate()
        return spec


@dataclass(frozen=True)
class BackendSpec:
    """The maintainer-backend part of a scenario.

    ``runner="sequential"`` drives :class:`~repro.core.dynamic_mis.DynamicMIS`
    with the registered ``engine`` backend; ``runner="protocol"`` drives the
    distributed simulator for ``(protocol, network)`` resolved through
    :func:`repro.distributed.network_api.create_network`, using ``engine``
    as the sequential reference of its periodic ``verify()``.  Names are
    validated against the *live* registries, so the same registry
    did-you-mean errors fire for typos here.

    ``scheduler`` parameterizes the message-delay adversary of asynchronous
    protocol scenarios: a record ``{"kind": "adversarial" | "fixed" |
    "random", <params>}`` resolved through
    :func:`repro.distributed.scheduler.create_scheduler` (unknown kinds and
    parameters raise with did-you-mean hints).  Only valid with
    ``runner="protocol"`` and ``protocol="async-direct"``; left ``None``,
    the simulator's default random scheduler applies.  Channel-deterministic
    kinds (``"adversarial"``, ``"fixed"``) are what make cross-backend
    differentials and exact checkpoint/resume possible for async scenarios.
    """

    runner: str = "sequential"
    engine: str = "template"
    network: str = "dict"
    protocol: str = "buffered"
    scheduler: Optional[Dict[str, Any]] = None
    parallel: Optional[ParallelSpec] = None

    _FIELDS = ("runner", "engine", "network", "protocol", "scheduler", "parallel")

    def validate(self) -> None:
        """Raise on unknown runner/engine/network/protocol/scheduler names."""
        _check_choice(self.runner, RUNNER_NAMES, "runner")
        # Registry lookups raise UnknownEngineError / UnknownNetworkError
        # (both ValueError subclasses) with their own did-you-mean hints.
        get_engine_factory(self.engine)
        if self.runner == "protocol":
            resolve_network(self.network, self.protocol)
        if self.scheduler is not None:
            if self.runner != "protocol" or self.protocol != "async-direct":
                raise ScenarioSpecError(
                    "a scheduler only applies to protocol-runner scenarios with "
                    f"protocol 'async-direct'; this backend declares "
                    f"runner={self.runner!r} protocol={self.protocol!r}"
                )
            self.build_scheduler()
        if self.parallel is not None:
            self.parallel.validate()
            if self.runner == "protocol" and self.protocol == "async-direct":
                raise ScenarioSpecError(
                    "parallel evaluation applies to sequential and synchronous "
                    "protocol scenarios; the asynchronous event loop has no "
                    "per-round frontier to parallelize"
                )

    def build_scheduler(self):
        """Instantiate the declared delay scheduler (``None`` when unset).

        Unknown kinds raise the registry's
        :class:`~repro.distributed.scheduler.UnknownSchedulerError` (with a
        did-you-mean hint); bad parameters raise :class:`ScenarioSpecError`.
        """
        if self.scheduler is None:
            return None
        from repro.distributed.scheduler import UnknownSchedulerError

        try:
            return scheduler_from_record(self.scheduler)
        except UnknownSchedulerError:
            raise
        except ValueError as error:
            raise ScenarioSpecError(f"bad scheduler spec: {error}") from None

    def describe(self) -> str:
        """One-line display form used by result tables."""
        if self.runner == "protocol":
            described = (
                f"protocol={self.protocol} network={self.network} "
                f"(verify vs {self.engine})"
            )
            if self.scheduler is not None:
                described += f" scheduler={self.scheduler.get('kind')}"
            if self.parallel is not None and self.parallel.workers > 1:
                described += f" workers={self.parallel.workers}"
            return described
        described = f"engine={self.engine}"
        if self.parallel is not None and self.parallel.workers > 1:
            described += f" workers={self.parallel.workers}"
        return described

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (exact round-trip through :meth:`from_dict`).

        The ``parallel`` key only appears when the block is set, so specs
        (and checkpoints) written before parallel evaluation existed decode
        and re-encode byte-identically.
        """
        record = {
            "runner": self.runner,
            "engine": self.engine,
            "network": self.network,
            "protocol": self.protocol,
            "scheduler": None if self.scheduler is None else dict(self.scheduler),
        }
        if self.parallel is not None:
            record["parallel"] = self.parallel.to_dict()
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "BackendSpec":
        """Decode (strict: unknown keys raise with a did-you-mean hint)."""
        _check_keys(record, cls._FIELDS, "backend spec")
        scheduler = record.get("scheduler")
        parallel = record.get("parallel")
        if parallel is not None and not isinstance(parallel, ParallelSpec):
            parallel = ParallelSpec.from_dict(parallel)
        spec = cls(
            runner=record.get("runner", "sequential"),
            engine=record.get("engine", "template"),
            network=record.get("network", "dict"),
            protocol=record.get("protocol", "buffered"),
            scheduler=None if scheduler is None else dict(scheduler),
            parallel=parallel,
        )
        spec.validate()
        return spec


# ----------------------------------------------------------------------
# The whole scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, serializable experiment description.

    ``seed`` seeds the *algorithm* (the random order ``pi`` / the simulator);
    the graph and workload carry their own seeds, so one scenario fixes all
    three sources of randomness independently.  ``batch_size > 0`` applies
    the workload through :meth:`~repro.core.dynamic_mis.DynamicMIS.apply_batch`
    in fixed-size chunks (sequential runner only).  ``sinks`` names metric
    sinks from the :mod:`repro.scenario.sinks` registry, attached as
    streaming observers.

    The spec round-trips exactly through :meth:`to_dict`/:meth:`from_dict`
    and :meth:`to_json`/:meth:`from_json`; decoding is strict (unknown keys
    and unknown backend names raise :class:`ScenarioSpecError` or the
    registry errors, all with did-you-mean hints).
    """

    name: str = ""
    seed: int = 0
    graph: Optional[GraphSpec] = field(default_factory=GraphSpec)
    workload: WorkloadSpec = field(default_factory=lambda: WorkloadSpec(num_changes=100))
    backend: BackendSpec = field(default_factory=BackendSpec)
    batch_size: int = 0
    sinks: Tuple[str, ...] = ()

    _FIELDS = ("format", "name", "seed", "graph", "workload", "backend", "batch_size", "sinks")

    # -- validation ------------------------------------------------------
    def validate(self) -> None:
        """Validate every part (raises :class:`ScenarioSpecError` or registry errors)."""
        _check_int(self.seed, "scenario seed")
        _check_int(self.batch_size, "batch_size", minimum=0)
        self.workload.validate()
        self.backend.validate()
        if self.workload.kind == "sliding_window" and self.graph is not None:
            raise ScenarioSpecError(
                "workload kind 'sliding_window' builds its own node set "
                "(params: num_nodes); set graph to null"
            )
        if self.graph is None:
            if self.workload.kind not in ("trace", "sliding_window"):
                raise ScenarioSpecError(
                    f"workload kind {self.workload.kind!r} needs a graph spec"
                )
        else:
            self.graph.validate()
        if self.batch_size and self.backend.runner != "sequential":
            raise ScenarioSpecError("batch_size > 0 needs the sequential runner")
        if self.batch_size and self.workload.is_dynamic:
            raise ScenarioSpecError(
                "adaptive workloads react to every single change; batch_size "
                "must stay 0"
            )
        from repro.scenario.sinks import check_sink_names

        check_sink_names(self.sinks)

    # -- materialization -------------------------------------------------
    def materialize(self) -> Tuple[DynamicGraph, List[TopologyChange]]:
        """Build ``(initial_graph, changes)`` for one run of this scenario.

        Deterministic in the spec alone: the same spec always yields the same
        workload, which is what makes "same scenario, two backends"
        differential runs and spec x backend benchmark grids sound.
        """
        self.validate()
        workload = self.workload
        if workload.is_dynamic:
            raise ScenarioSpecError(
                f"workload kind {workload.kind!r} is generated against the live "
                "backend and cannot be pre-materialized; stream it through "
                "repro.scenario.Session (which also checkpoints it)"
            )
        if workload.kind == "trace":
            return self._materialize_trace()
        if workload.kind == "sliding_window":
            num_nodes = workload.params["num_nodes"]
            changes = sliding_window_sequence(
                num_nodes,
                workload.params["window_size"],
                workload.num_changes,
                seed=workload.seed,
            )
            return DynamicGraph(nodes=range(num_nodes)), changes
        graph = self.graph.build()
        try:
            if workload.kind == "mixed_churn":
                changes = mixed_churn_sequence(
                    graph, workload.num_changes, seed=workload.seed, **workload.params
                )
            elif workload.kind == "edge_churn":
                changes = edge_churn_sequence(
                    graph, workload.num_changes, seed=workload.seed, **workload.params
                )
            elif workload.kind == "node_churn":
                changes = node_churn_sequence(
                    graph, workload.num_changes, seed=workload.seed, **workload.params
                )
            elif workload.kind == "build":
                changes = build_sequence(graph, seed=workload.seed, **workload.params)
                return DynamicGraph(), changes
            elif workload.kind == "teardown":
                changes = teardown_sequence(graph, seed=workload.seed, **workload.params)
            else:  # pragma: no cover - kinds are validated upfront
                raise AssertionError(workload.kind)
        except TypeError as error:
            raise ScenarioSpecError(
                f"bad params for workload kind {workload.kind!r}: {error}"
            ) from None
        return graph, changes

    def _materialize_trace(self) -> Tuple[DynamicGraph, List[TopologyChange]]:
        from repro.workloads.trace import TraceFormatError, load_trace

        try:
            loaded = load_trace(self.workload.path)
        except (OSError, TraceFormatError, json.JSONDecodeError) as error:
            raise ScenarioSpecError(
                f"cannot load trace {self.workload.path!r}: {error}"
            ) from None
        graph = loaded["initial_graph"]
        if graph is None:
            if self.graph is None:
                raise ScenarioSpecError(
                    f"trace {self.workload.path!r} has no initial graph and the "
                    "scenario has no graph spec"
                )
            graph = self.graph.build()
        return graph, loaded["changes"]

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (exact round-trip through :meth:`from_dict`)."""
        return {
            "format": FORMAT,
            "name": self.name,
            "seed": self.seed,
            "graph": None if self.graph is None else self.graph.to_dict(),
            "workload": self.workload.to_dict(),
            "backend": self.backend.to_dict(),
            "batch_size": self.batch_size,
            "sinks": list(self.sinks),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "ScenarioSpec":
        """Decode and validate (strict; see the class docstring)."""
        _check_keys(record, cls._FIELDS, "scenario spec")
        declared = record.get("format", FORMAT)
        if declared != FORMAT:
            raise ScenarioSpecError(
                f"unsupported scenario format {declared!r} (expected {FORMAT!r})"
            )
        graph_record = record.get("graph", {})
        sinks = record.get("sinks", [])
        if isinstance(sinks, str):
            raise ScenarioSpecError("sinks must be a list of sink names, not a string")
        spec = cls(
            name=str(record.get("name", "")),
            seed=record.get("seed", 0),
            graph=None if graph_record is None else GraphSpec.from_dict(graph_record),
            workload=WorkloadSpec.from_dict(record.get("workload", {})),
            backend=BackendSpec.from_dict(record.get("backend", {})),
            batch_size=record.get("batch_size", 0),
            sinks=tuple(sinks),
        )
        spec.validate()
        return spec

    def to_json(self, indent: int = 2) -> str:
        """JSON text form (exact round-trip through :meth:`from_json`)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Decode :meth:`to_json` output (or any conforming JSON object)."""
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioSpecError(f"not valid JSON: {error}") from None
        return cls.from_dict(record)

    def save(self, path) -> None:
        """Write the spec to a JSON file."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path) -> "ScenarioSpec":
        """Read a spec from a JSON file written by :meth:`save` (or by hand)."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise ScenarioSpecError(f"cannot read scenario file {path!r}: {error}") from None
        return cls.from_json(text)

    # -- conveniences ----------------------------------------------------
    def with_backend(self, **overrides: Any) -> "ScenarioSpec":
        """Copy of the spec with backend fields replaced (for backend grids)."""
        backend = dataclasses.replace(self.backend, **overrides)
        backend.validate()
        return dataclasses.replace(self, backend=backend)
