"""JSON serialization of :class:`~repro.scenario.session.SessionCheckpoint`.

A checkpoint is only useful if it survives the process that took it.  This
module flattens a session checkpoint -- the spec, the position, the backend
snapshot (either flavor: a label-level
:class:`~repro.core.engine_api.EngineSnapshot` or a knowledge-level
:class:`~repro.distributed.state.NetworkSnapshot`), the sequential
statistics and the adaptive adversary's RNG state -- into plain JSON and
back, exactly (machine-checked by the round-trip tests in
``tests/test_scenario_session.py``).

Node labels are encoded with the trace codec
(:func:`repro.workloads.trace.encode_node`), so every node type the library
uses (ints, strings, nested tuples from the reductions) round-trips.  The
CLI's ``run --checkpoint-every N --checkpoint-path p.json`` writes these
files and ``run --resume-from p.json`` continues them -- on any registered
backend, thanks to the label-keyed snapshots.

Two record versions exist.  ``repro-checkpoint-v2`` (what this module
writes) adds the asynchronous scheduler's resumable RNG state and the
optional :class:`~repro.scenario.journal.DeltaJournal` of delta
checkpoints; ``repro-checkpoint-v1`` files (written before those fields
existed) still decode -- the missing fields default to ``None``, which the
restore paths accept as "no scheduler state / full checkpoint".
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.core.engine_api import EngineSnapshot
from repro.distributed.metrics import ChangeMetrics
from repro.distributed.state import NetworkSnapshot
from repro.scenario.journal import DeltaJournal, JournalEntry
from repro.scenario.session import SessionCheckpoint
from repro.scenario.spec import ScenarioSpec
from repro.workloads.trace import decode_node, encode_node

FORMAT = "repro-checkpoint-v2"
FORMAT_V1 = "repro-checkpoint-v1"

#: Formats :func:`checkpoint_from_dict` accepts (newest first).
SUPPORTED_FORMATS = (FORMAT, FORMAT_V1)


class CheckpointFormatError(ValueError):
    """A serialized checkpoint that cannot be decoded."""


# ----------------------------------------------------------------------
# Shared pieces
# ----------------------------------------------------------------------
def _encode_key(key: Tuple) -> list:
    # Recursive: the reductions produce nested-tuple priority keys, and a
    # shallow list() would round-trip the inner tuples as lists, silently
    # breaking label-keyed restore equality.
    return [_encode_key(part) if isinstance(part, tuple) else part for part in key]


def _decode_key(value) -> Tuple:
    return tuple(
        _decode_key(part) if isinstance(part, list) else part for part in value
    )


def _encode_state_tree(state: Optional[Tuple]):
    """Opaque resumable states (scheduler RNG position): tuples -> lists."""
    if state is None:
        return None
    return [
        _encode_state_tree(part) if isinstance(part, tuple) else part for part in state
    ]


def _decode_state_tree(value) -> Optional[Tuple]:
    if value is None:
        return None
    return tuple(
        _decode_state_tree(part) if isinstance(part, list) else part for part in value
    )


def _encode_nodes_edges(snapshot) -> Dict[str, Any]:
    return {
        "nodes": [encode_node(node) for node in snapshot.nodes],
        "edges": [[encode_node(u), encode_node(v)] for u, v in snapshot.edges],
        "priority_keys": [
            [encode_node(node), _encode_key(key)]
            for node, key in snapshot.priority_keys.items()
        ],
    }


def _decode_nodes_edges(record) -> Dict[str, Any]:
    return {
        "nodes": tuple(decode_node(value) for value in record["nodes"]),
        "edges": tuple((decode_node(u), decode_node(v)) for u, v in record["edges"]),
        "priority_keys": {
            decode_node(node): _decode_key(key) for node, key in record["priority_keys"]
        },
    }


# ----------------------------------------------------------------------
# Snapshot flavors
# ----------------------------------------------------------------------
def _encode_engine_snapshot(snapshot: EngineSnapshot) -> Dict[str, Any]:
    record = {"kind": "engine"}
    record.update(_encode_nodes_edges(snapshot))
    record["states"] = [
        [encode_node(node), bool(in_mis)] for node, in_mis in snapshot.states.items()
    ]
    return record


def _decode_engine_snapshot(record) -> EngineSnapshot:
    parts = _decode_nodes_edges(record)
    return EngineSnapshot(
        nodes=parts["nodes"],
        edges=parts["edges"],
        states={decode_node(node): bool(in_mis) for node, in_mis in record["states"]},
        priority_keys=parts["priority_keys"],
    )


def _encode_metric_record(record: ChangeMetrics) -> Dict[str, Any]:
    return {
        "change_kind": record.change_kind,
        "rounds": record.rounds,
        "broadcasts": record.broadcasts,
        "bits": record.bits,
        "adjustments": record.adjustments,
        "adjusted_nodes": [encode_node(node) for node in sorted(record.adjusted_nodes, key=repr)],
        "state_changes": record.state_changes,
        "async_causal_depth": record.async_causal_depth,
    }


def _decode_metric_record(record) -> ChangeMetrics:
    return ChangeMetrics(
        change_kind=record["change_kind"],
        rounds=record["rounds"],
        broadcasts=record["broadcasts"],
        bits=record["bits"],
        adjustments=record["adjustments"],
        adjusted_nodes={decode_node(node) for node in record["adjusted_nodes"]},
        state_changes=record["state_changes"],
        async_causal_depth=record["async_causal_depth"],
    )


def _encode_network_snapshot(snapshot: NetworkSnapshot) -> Dict[str, Any]:
    record = {"kind": "network", "protocol": snapshot.protocol}
    record.update(_encode_nodes_edges(snapshot))
    record["states"] = [
        [encode_node(node), value] for node, value in snapshot.states.items()
    ]
    record["knowledge"] = [
        [encode_node(node), encode_node(neighbor), heard, bool(key_known)]
        for (node, neighbor), (heard, key_known) in snapshot.knowledge.items()
    ]
    record["scheduler_cursor"] = snapshot.scheduler_cursor
    record["metrics"] = [_encode_metric_record(metric) for metric in snapshot.metrics]
    record["scheduler_state"] = _encode_state_tree(snapshot.scheduler_state)
    return record


def _decode_network_snapshot(record) -> NetworkSnapshot:
    parts = _decode_nodes_edges(record)
    return NetworkSnapshot(
        protocol=record["protocol"],
        nodes=parts["nodes"],
        edges=parts["edges"],
        states={decode_node(node): value for node, value in record["states"]},
        priority_keys=parts["priority_keys"],
        knowledge={
            (decode_node(node), decode_node(neighbor)): (heard, bool(key_known))
            for node, neighbor, heard, key_known in record["knowledge"]
        },
        scheduler_cursor=record["scheduler_cursor"],
        metrics=tuple(_decode_metric_record(metric) for metric in record["metrics"]),
        # v1 records predate scheduler state; None restores as "fresh stream".
        scheduler_state=_decode_state_tree(record.get("scheduler_state")),
    )


# ----------------------------------------------------------------------
# Runner extras
# ----------------------------------------------------------------------
def _encode_statistics(statistics) -> Optional[Dict[str, Any]]:
    if statistics is None:
        return None
    import dataclasses

    return {name: list(values) for name, values in dataclasses.asdict(statistics).items()}


def _decode_statistics(record):
    if record is None:
        return None
    from repro.core.dynamic_mis import MaintainerStatistics

    return MaintainerStatistics(**{name: list(values) for name, values in record.items()})


def _encode_workload_state(state: Optional[Tuple]):
    if state is None:
        return None
    tag, remaining, rng_state = state
    version, internal, gauss = rng_state
    return [tag, remaining, [version, list(internal), gauss]]


def _decode_workload_state(record) -> Optional[Tuple]:
    if record is None:
        return None
    tag, remaining, rng_state = record
    version, internal, gauss = rng_state
    # random.Random.setstate needs the exact nested tuple shape back.
    return (tag, int(remaining), (version, tuple(internal), gauss))


# ----------------------------------------------------------------------
# Delta journals (v2)
# ----------------------------------------------------------------------
def _encode_journal_entry(entry: JournalEntry) -> Dict[str, Any]:
    return {
        "position": entry.position,
        "change_kind": entry.change_kind,
        "nodes_added": [
            [encode_node(node), _encode_key(key)] for node, key in entry.nodes_added
        ],
        "nodes_removed": [encode_node(node) for node in entry.nodes_removed],
        "edges_added": [
            [encode_node(u), encode_node(v)] for u, v in entry.edges_added
        ],
        "edges_removed": [
            [encode_node(u), encode_node(v)] for u, v in entry.edges_removed
        ],
        "states": [[encode_node(node), value] for node, value in entry.states],
        "metric": (
            _encode_metric_record(entry.metric) if entry.metric is not None else None
        ),
        "stats_row": list(entry.stats_row) if entry.stats_row is not None else None,
        "scheduler_cursor": entry.scheduler_cursor,
        "scheduler_state": _encode_state_tree(entry.scheduler_state),
        "workload_state": _encode_workload_state(entry.workload_state),
        "elapsed_s": entry.elapsed_s,
    }


def _decode_journal_entry(record) -> JournalEntry:
    metric = record.get("metric")
    stats_row = record.get("stats_row")
    return JournalEntry(
        position=int(record["position"]),
        change_kind=record["change_kind"],
        nodes_added=tuple(
            (decode_node(node), _decode_key(key)) for node, key in record["nodes_added"]
        ),
        nodes_removed=tuple(decode_node(node) for node in record["nodes_removed"]),
        edges_added=tuple(
            (decode_node(u), decode_node(v)) for u, v in record["edges_added"]
        ),
        edges_removed=tuple(
            (decode_node(u), decode_node(v)) for u, v in record["edges_removed"]
        ),
        states=tuple((decode_node(node), value) for node, value in record["states"]),
        metric=_decode_metric_record(metric) if metric is not None else None,
        stats_row=tuple(stats_row) if stats_row is not None else None,
        scheduler_cursor=int(record["scheduler_cursor"]),
        scheduler_state=_decode_state_tree(record.get("scheduler_state")),
        workload_state=_decode_workload_state(record.get("workload_state")),
        elapsed_s=float(record.get("elapsed_s", 0.0)),
    )


def _encode_journal(journal: DeltaJournal) -> Dict[str, Any]:
    # The journal base rides in the checkpoint's own snapshot / statistics /
    # workload_state / elapsed_s fields (that is what a delta checkpoint
    # stores there), so only the entry list and base position go here.
    return {
        "base_position": journal.base_position,
        "entries": [_encode_journal_entry(entry) for entry in journal.entries],
    }


def _decode_journal(
    record, snapshot, statistics, workload_state, elapsed_s
) -> DeltaJournal:
    return DeltaJournal(
        snapshot,
        base_position=int(record["base_position"]),
        base_statistics=statistics,
        base_workload_state=workload_state,
        base_elapsed_s=elapsed_s,
        entries=[_decode_journal_entry(entry) for entry in record["entries"]],
    )


# ----------------------------------------------------------------------
# Whole checkpoints
# ----------------------------------------------------------------------
def checkpoint_to_dict(checkpoint: SessionCheckpoint) -> Dict[str, Any]:
    """Flatten a :class:`SessionCheckpoint` into a JSON-compatible dict."""
    if isinstance(checkpoint.snapshot, NetworkSnapshot):
        snapshot_record = _encode_network_snapshot(checkpoint.snapshot)
    elif isinstance(checkpoint.snapshot, EngineSnapshot):
        snapshot_record = _encode_engine_snapshot(checkpoint.snapshot)
    else:  # pragma: no cover - defensive
        raise CheckpointFormatError(
            f"cannot serialize snapshot of type {type(checkpoint.snapshot).__name__}"
        )
    return {
        "format": FORMAT,
        "spec": checkpoint.spec.to_dict(),
        "position": checkpoint.position,
        "snapshot": snapshot_record,
        "statistics": _encode_statistics(checkpoint.statistics),
        "workload_state": _encode_workload_state(checkpoint.workload_state),
        "elapsed_s": checkpoint.elapsed_s,
        "journal": (
            _encode_journal(checkpoint.journal)
            if checkpoint.journal is not None
            else None
        ),
    }


def checkpoint_from_dict(record: Dict[str, Any]) -> SessionCheckpoint:
    """Decode :func:`checkpoint_to_dict` output back into a checkpoint.

    Accepts every version in :data:`SUPPORTED_FORMATS`: v1 records simply
    lack the scheduler-state and journal fields, which decode as ``None``.
    """
    if not isinstance(record, dict) or record.get("format") not in SUPPORTED_FORMATS:
        raise CheckpointFormatError(
            f"not a supported checkpoint record (expected format in "
            f"{SUPPORTED_FORMATS})"
        )
    if "spec" not in record:
        # A missing spec must not silently decode to the *default* scenario:
        # the restored snapshot would run a wrong workload without any error.
        raise CheckpointFormatError("malformed checkpoint record: missing 'spec'")
    # Decoded first so spec problems surface as ScenarioSpecError (with their
    # did-you-mean hints) instead of a generic malformed-checkpoint error.
    spec = ScenarioSpec.from_dict(record["spec"])
    try:
        snapshot_record = record["snapshot"]
        kind = snapshot_record["kind"]
        if kind == "network":
            snapshot = _decode_network_snapshot(snapshot_record)
        elif kind == "engine":
            snapshot = _decode_engine_snapshot(snapshot_record)
        else:
            raise CheckpointFormatError(f"unknown snapshot kind {kind!r}")
        statistics = _decode_statistics(record.get("statistics"))
        workload_state = _decode_workload_state(record.get("workload_state"))
        elapsed_s = float(record.get("elapsed_s", 0.0))
        journal_record = record.get("journal")
        journal = (
            _decode_journal(journal_record, snapshot, statistics, workload_state, elapsed_s)
            if journal_record is not None
            else None
        )
        return SessionCheckpoint(
            spec=spec,
            position=int(record["position"]),
            snapshot=snapshot,
            statistics=statistics,
            workload_state=workload_state,
            elapsed_s=elapsed_s,
            journal=journal,
        )
    except (KeyError, TypeError, ValueError) as error:
        if isinstance(error, CheckpointFormatError):
            raise
        raise CheckpointFormatError(f"malformed checkpoint record: {error}") from None


def save_checkpoint(path, checkpoint: SessionCheckpoint) -> None:
    """Write a checkpoint to a JSON file (atomically replaced on rewrite).

    The temporary sibling carries the pid plus a random fragment, so two
    sessions checkpointing to the same path never clobber each other's
    half-written file, and it is removed again if encoding or writing
    fails part-way.  The temp file is fsynced *before* the atomic rename:
    without the flush-to-disk barrier a crash shortly after the rename could
    leave a truncated file under the final name -- the one failure mode the
    service daemon's spool directory must never see, since an evicted
    session IS its checkpoint file.
    """
    target = Path(path)
    # Serialize before touching the filesystem: an encode failure must not
    # leave an orphaned temp file behind.
    text = json.dumps(checkpoint_to_dict(checkpoint), indent=2, sort_keys=True) + "\n"
    temporary = target.with_name(
        f".{target.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
    )
    try:
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, target)
    except BaseException:
        try:
            temporary.unlink()
        except OSError:
            pass
        raise


def load_checkpoint(path) -> SessionCheckpoint:
    """Read a checkpoint from a JSON file written by :func:`save_checkpoint`."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise CheckpointFormatError(f"cannot read checkpoint file {path!r}: {error}") from None
    try:
        record = json.loads(text)
    except json.JSONDecodeError as error:
        raise CheckpointFormatError(f"not valid JSON: {error}") from None
    return checkpoint_from_dict(record)
