"""Streaming metric sinks (observers) for scenario sessions.

A :class:`~repro.scenario.session.Session` notifies its observers while the
scenario streams: once at the start, once per applied change (or batch), and
once at the end with the final :class:`~repro.scenario.session.ScenarioResult`.
Observers never influence the run -- they are pure measurement taps, which is
what keeps "same scenario, two backends" runs comparable.

The per-change ``record`` is whatever the runner produces:
an :class:`~repro.core.template.UpdateReport` for the sequential runner, a
:class:`~repro.distributed.metrics.ChangeMetrics` for the protocol runner,
and a :class:`~repro.core.engine_api.BatchUpdateReport` for batched
sequential sessions.  :data:`TRACKED_ATTRIBUTES` lists the numeric fields a
generic sink may probe; absent fields are simply skipped, so one sink
implementation serves every runner.

Sinks referenced *by name* in a :class:`~repro.scenario.spec.ScenarioSpec`
resolve through the registry here (:func:`register_sink` /
:func:`create_sink`), mirroring the engine and network registries including
the did-you-mean errors.  A name may carry one argument after a colon, e.g.
``"jsonl:/tmp/changes.jsonl"``.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.registry import Registry, UnknownNameError

#: Numeric per-change fields a generic sink probes on each record (sequential
#: report fields first, protocol metric fields second; a record exposes a
#: subset of these).
TRACKED_ATTRIBUTES = (
    "num_adjustments",
    "influenced_size",
    "num_levels",
    "state_flips",
    "update_work",
    "rounds",
    "broadcasts",
    "bits",
    "adjustments",
    "state_changes",
)


class ScenarioObserver:
    """Base class for session observers; all hooks default to no-ops.

    Subclass and override any subset of the hooks.  ``on_change`` fires once
    per individually applied change, ``on_batch`` once per applied batch
    (batched sequential sessions fire ``on_batch`` only).
    """

    def on_start(self, session) -> None:
        """The session is about to apply its first change."""

    def on_change(self, step: int, change, record) -> None:
        """Change ``step`` (0-based) was applied; ``record`` is its report."""

    def on_batch(self, index: int, changes: Sequence, report) -> None:
        """Batch ``index`` (0-based) was applied atomically."""

    def on_end(self, session, result) -> None:
        """The session finished; ``result`` is its ScenarioResult."""


class SummarySink(ScenarioObserver):
    """Aggregate every tracked numeric field over the streamed records.

    After the run, :meth:`summary` returns ``{field: {"mean", "max",
    "total"}}`` for each field the records actually carried, plus the change
    count -- a runner-agnostic cost profile of the scenario.
    """

    def __init__(self) -> None:
        self._values: Dict[str, List[float]] = {}
        self._changes = 0
        self._batches = 0

    def on_change(self, step: int, change, record) -> None:
        self._changes += 1
        self._collect(record)

    def on_batch(self, index: int, changes: Sequence, report) -> None:
        self._changes += len(changes)
        self._batches += 1
        self._collect(report)

    def _collect(self, record) -> None:
        for attribute in TRACKED_ATTRIBUTES:
            value = getattr(record, attribute, None)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self._values.setdefault(attribute, []).append(float(value))

    @property
    def num_changes(self) -> int:
        """Number of individual changes observed (batched changes included)."""
        return self._changes

    def summary(self) -> Dict[str, Any]:
        """Mean/max/total of every observed field plus the change count."""
        summary: Dict[str, Any] = {"num_changes": self._changes}
        if self._batches:
            summary["num_batches"] = self._batches
        for attribute, values in sorted(self._values.items()):
            summary[attribute] = {
                "mean": sum(values) / len(values),
                "max": max(values),
                "total": sum(values),
            }
        return summary


class JsonlSink(ScenarioObserver):
    """Append one JSON line per change (or batch) to a file.

    Lines carry the step index, the change (its ``repr``) and every tracked
    numeric field present on the record -- a cheap machine-readable
    per-change log for offline analysis.
    """

    def __init__(self, path: str) -> None:
        if not path:
            raise ValueError("jsonl sink needs a file path, e.g. 'jsonl:out.jsonl'")
        self._path = path
        self._handle = None

    def on_start(self, session) -> None:
        # A resumed session (position > 0) appends, so the pre-checkpoint
        # lines of an interrupted run survive in the same file.
        mode = "a" if session.position else "w"
        self._handle = open(self._path, mode, encoding="utf-8")

    def _emit(self, document: Dict[str, Any]) -> None:
        if self._handle is not None:
            self._handle.write(json.dumps(document, sort_keys=True) + "\n")
            # Lines land on disk immediately, so an interrupted (later
            # resumed) session leaves a complete per-change log behind.
            self._handle.flush()

    def on_change(self, step: int, change, record) -> None:
        document: Dict[str, Any] = {"step": step, "change": repr(change)}
        for attribute in TRACKED_ATTRIBUTES:
            value = getattr(record, attribute, None)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                document[attribute] = value
        self._emit(document)

    def on_batch(self, index: int, changes: Sequence, report) -> None:
        document: Dict[str, Any] = {"batch": index, "batch_size": len(changes)}
        for attribute in TRACKED_ATTRIBUTES:
            value = getattr(report, attribute, None)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                document[attribute] = value
        self._emit(document)

    def on_end(self, session, result) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CallbackSink(ScenarioObserver):
    """Adapt a plain callable into an observer (called per change/batch)."""

    def __init__(self, callback: Callable[[int, Any, Any], None]) -> None:
        self._callback = callback

    def on_change(self, step: int, change, record) -> None:
        self._callback(step, change, record)

    def on_batch(self, index: int, changes: Sequence, report) -> None:
        self._callback(index, changes, report)


# ----------------------------------------------------------------------
# Registry (a thin wrapper over the shared repro.registry helper)
# ----------------------------------------------------------------------
class UnknownSinkError(UnknownNameError):
    """A sink name that is not registered (with a did-you-mean hint)."""

    def __init__(self, name: str, known: Sequence[str]) -> None:
        super().__init__("sink", name, known)


#: A registered factory takes the optional ``:argument`` suffix (None when
#: the name had none) and returns a ready observer.
SinkFactory = Callable[[Optional[str]], ScenarioObserver]


def _check_sink_name(name: str) -> None:
    # Sink names must leave ':' free for the "name:argument" spec form.
    if not isinstance(name, str) or not name or ":" in name:
        raise ValueError(
            f"sink name must be a non-empty string without ':', got {name!r}"
        )


_REGISTRY = Registry("sink", error=UnknownSinkError, check_name=_check_sink_name)


def register_sink(name: str, factory: SinkFactory, overwrite: bool = False) -> None:
    """Register an observer factory under ``name`` (see the module docstring)."""
    _REGISTRY.register(name, factory, overwrite=overwrite)


def unregister_sink(name: str) -> None:
    """Remove ``name`` from the registry (no-op if absent; mainly for tests)."""
    _REGISTRY.unregister(name)


def available_sinks() -> Tuple[str, ...]:
    """The registered sink names, built-ins first, in registration order."""
    return _REGISTRY.names()


def get_sink_factory(name: str) -> SinkFactory:
    """The factory registered under ``name`` (raises :class:`UnknownSinkError`)."""
    return _REGISTRY.get(name)


def _split(sink_name: str) -> Tuple[str, Optional[str]]:
    name, _, argument = str(sink_name).partition(":")
    return name, (argument or None)


def create_sink(sink_name: str) -> ScenarioObserver:
    """Build an observer from a spec sink name (``"name"`` or ``"name:arg"``)."""
    name, argument = _split(sink_name)
    return _REGISTRY.get(name)(argument)


def check_sink_names(sink_names: Iterable[str]) -> None:
    """Validate sink names without instantiating (spec validation path)."""
    for sink_name in sink_names:
        name, _ = _split(sink_name)
        if name not in _REGISTRY:
            raise UnknownSinkError(name, available_sinks())


def _summary_factory(argument: Optional[str]) -> ScenarioObserver:
    """Aggregate mean/max/total of every tracked field (no argument)."""
    if argument is not None:
        raise ValueError("the summary sink takes no argument")
    return SummarySink()


def _jsonl_factory(argument: Optional[str]) -> ScenarioObserver:
    """Append one JSON line per change to a file ('jsonl:<path>')."""
    if argument is None:
        raise ValueError("the jsonl sink needs a path: 'jsonl:<path>'")
    return JsonlSink(argument)


register_sink("summary", _summary_factory)
register_sink("jsonl", _jsonl_factory)
