"""The streaming :class:`Session` runner: drive any spec through any backend.

A session materializes a :class:`~repro.scenario.spec.ScenarioSpec` into
``(initial_graph, changes)``, builds the requested backend (a sequential
:class:`~repro.core.dynamic_mis.DynamicMIS` or a distributed simulator from
the network registry) and streams the workload through it:

* :meth:`Session.step` applies the next change (or batch) and notifies the
  attached observers (:mod:`repro.scenario.sinks`);
* :meth:`Session.run` streams to the end, verifies, and returns a
  :class:`ScenarioResult`;
* :meth:`Session.checkpoint` captures a resumable
  :class:`SessionCheckpoint` between steps, and :meth:`Session.resume`
  continues it in a fresh session -- on the same backend or a different
  registered one.

Checkpointing works for **every** backend the registries know: sequential
sessions ride on the engines'
:meth:`~repro.core.engine_api.MISEngine.snapshot` /
:meth:`~repro.core.engine_api.MISEngine.restore` pair, protocol sessions on
the simulators' knowledge-level
:class:`~repro.distributed.state.NetworkSnapshot` pair -- both sides of the
shared :class:`~repro.core.state_api.Checkpointable` contract.  Because both
snapshot flavors are label-keyed, a checkpoint taken on one backend resumes
on another (``resume(checkpoint, engine="fast")`` for sequential sessions,
``resume(checkpoint, network="fast")`` for protocol sessions).

Checkpoint/resume is *exact*: node priorities are a pure function of
``(seed, node)`` (see :class:`~repro.core.priorities.RandomPriorityAssigner`),
so a resumed session applies the identical remaining workload to the
identical restored state and lands on the same outputs, statistics and
per-change metrics -- machine-checked by the checkpoint differentials in
``tests/test_scenario_session.py`` and
:func:`repro.testing.protocol_differential.replay_resume_differential`.
This includes asynchronous scenarios under the ``"random"`` delay
scheduler: the snapshot carries the scheduler's RNG stream position
(:attr:`~repro.distributed.state.NetworkSnapshot.scheduler_state`), so a
same-backend resume draws the identical remaining delays.  Only
cross-*backend* comparisons still need a channel-deterministic scheduler
(kind ``"adversarial"`` or ``"fixed"``) -- the dict and fast cores
enumerate receivers in different orders, so they consume a random stream
differently.

Dynamic workloads (``workload.kind == "adaptive_adversary"``) are generated
against the live backend one change at a time; their checkpoint carries the
adversary's RNG state, so even an adaptive run resumes exactly.

Sessions created with ``record_journal=True`` additionally keep a
:class:`~repro.scenario.journal.DeltaJournal`: :meth:`Session.checkpoint`
then returns cheap delta checkpoints (O(|touched|) instead of a full
O(n + m) snapshot) and :meth:`Session.replay_to` rewinds the recorded run
to any position -- the record/replay-to/bisect workflow of the
``repro-mis bisect`` command.
"""

from __future__ import annotations

import copy
import dataclasses
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.dynamic_mis import DynamicMIS, MaintainerStatistics
from repro.core.engine_api import EngineSnapshot
from repro.core.state_api import Checkpointable
from repro.distributed.network_api import create_network
from repro.distributed.state import NetworkSnapshot
from repro.graph.dynamic_graph import DynamicGraph
from repro.scenario.journal import DeltaJournal, JournalError
from repro.scenario.sinks import ScenarioObserver, create_sink
from repro.scenario.spec import ParallelSpec, ScenarioSpec, ScenarioSpecError
from repro.workloads.adversary import AdaptiveAdversary
from repro.workloads.changes import TopologyChange

Node = Hashable


@dataclass(frozen=True)
class SessionCheckpoint:
    """A resumable point of a scenario session, any runner.

    Holds the spec (static workloads re-materialize from it
    deterministically), the number of changes already applied, the backend's
    label-keyed snapshot (an :class:`~repro.core.engine_api.EngineSnapshot`
    for sequential sessions, a
    :class:`~repro.distributed.state.NetworkSnapshot` for protocol sessions)
    and the runner-side extras: a copy of the sequential statistics, and the
    adaptive adversary's RNG state for dynamic workloads.  Because both
    snapshot flavors are label-keyed, a checkpoint taken on one backend can
    resume on another (``resume(checkpoint, engine="fast")`` /
    ``resume(checkpoint, network="fast")``) -- the cross-backend analogue of
    the differential harness's rewind.

    Checkpoints serialize to JSON files through
    :mod:`repro.scenario.checkpoint_io` (the CLI's ``--checkpoint-path`` /
    ``--resume-from`` flags).
    """

    spec: ScenarioSpec
    position: int
    snapshot: Union[EngineSnapshot, NetworkSnapshot]
    statistics: Optional[MaintainerStatistics] = None
    workload_state: Optional[Tuple] = None
    #: Wall-clock seconds spent inside apply calls up to this point; the
    #: resumed session continues the clock, so its result's ``per_change_us``
    #: averages over the whole run, not just the resumed stretch.
    elapsed_s: float = 0.0
    #: Delta checkpoints (sessions recording a journal) carry the journal
    #: slice here; ``snapshot`` / ``statistics`` / ``workload_state`` /
    #: ``elapsed_s`` then describe the journal *base*, and :meth:`resolve`
    #: folds everything forward to ``position``.
    journal: Optional[DeltaJournal] = None

    def resolve(self) -> "SessionCheckpoint":
        """Fold a delta checkpoint into a plain (journal-free) one.

        A no-op for full checkpoints.  This is where the O(n + m) cost a
        delta checkpoint deferred is finally paid -- once, at restore time,
        instead of at every capture.
        """
        if self.journal is None:
            return self
        folded = self.journal.fold(self.position)
        return dataclasses.replace(
            self,
            snapshot=folded.snapshot,
            statistics=folded.statistics,
            workload_state=folded.workload_state,
            elapsed_s=folded.elapsed_s,
            journal=None,
        )

    @property
    def runner(self) -> str:
        """Which runner family took the checkpoint."""
        return self.spec.backend.runner

    @property
    def remaining_changes(self) -> int:
        """How many workload changes are still to be applied after this point."""
        return self.spec_total_changes - self.position

    @property
    def spec_total_changes(self) -> int:
        """Total workload length of the underlying spec.

        For dynamic (adaptive) workloads this is the declared change budget;
        the adversary may stop early if the backend's MIS empties out.
        """
        if self.spec.workload.is_dynamic:
            return self.spec.workload.num_changes
        _, changes = self.spec.materialize()
        return len(changes)


@dataclass
class ScenarioResult:
    """Outcome of one completed scenario run."""

    name: str
    runner: str
    backend: str
    num_changes: int
    elapsed_s: float
    final_mis_size: int
    final_num_nodes: int
    verified: bool
    summary: Dict[str, Any] = field(default_factory=dict)

    @property
    def per_change_us(self) -> float:
        """Mean wall-clock microseconds per applied change."""
        return self.elapsed_s / self.num_changes * 1e6 if self.num_changes else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (used by benchmark payloads)."""
        return {
            "name": self.name,
            "runner": self.runner,
            "backend": self.backend,
            "num_changes": self.num_changes,
            "elapsed_s": self.elapsed_s,
            "per_change_us": self.per_change_us,
            "final_mis_size": self.final_mis_size,
            "final_num_nodes": self.final_num_nodes,
            "verified": self.verified,
            "summary": dict(self.summary),
        }


class Session:
    """Stream one scenario through one backend, notifying observers.

    Parameters
    ----------
    spec:
        The scenario to run (validated and materialized upfront; adaptive
        workloads are generated change by change against the live backend).
    observers:
        Extra :class:`~repro.scenario.sinks.ScenarioObserver` instances, on
        top of the sinks named in ``spec.sinks``.
    record_journal:
        Keep a :class:`~repro.scenario.journal.DeltaJournal` of every
        applied change.  Enables delta checkpoints
        (:meth:`checkpoint`) and :meth:`replay_to`; requires an unbatched
        workload and a :class:`~repro.core.state_api.Checkpointable`
        backend.
    default_workers:
        Best-effort parallelism for specs *without* an explicit
        ``backend.parallel`` block (the service host threads its per-shard
        budget through here).  Attaches a worker pool when the backend
        supports one and silently runs serial otherwise -- unlike an
        explicit spec block, which is strict.

    Use :meth:`Session.resume` (not the constructor) to continue from a
    :class:`SessionCheckpoint`.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        observers: Iterable[ScenarioObserver] = (),
        _checkpoint: Optional[SessionCheckpoint] = None,
        record_journal: bool = False,
        default_workers: Optional[int] = None,
    ) -> None:
        spec.validate()
        if _checkpoint is not None and _checkpoint.journal is not None:
            # Delta checkpoints fold to a plain one exactly once, here.
            _checkpoint = _checkpoint.resolve()
        self._spec = spec
        self._dynamic = spec.workload.is_dynamic
        if self._dynamic:
            self._initial_graph = spec.graph.build()
            self._changes: List[TopologyChange] = []
            self._batches: List[List[TopologyChange]] = []
        else:
            self._initial_graph, self._changes = spec.materialize()
            self._batches = self._chunk(self._changes, spec.batch_size)
        self._observers: List[ScenarioObserver] = [
            create_sink(name) for name in spec.sinks
        ]
        self._observers.extend(observers)
        self._position = 0  # changes applied
        self._unit_index = 0  # batches applied (== position when unbatched)
        self._elapsed = 0.0
        self._started = False
        self._exhausted = False  # dynamic workload stopped early

        self._maintainer: Optional[DynamicMIS] = None
        self._network = None
        if spec.backend.runner == "sequential":
            engine = spec.backend.engine
            if _checkpoint is None:
                self._maintainer = DynamicMIS(
                    seed=spec.seed, initial_graph=self._initial_graph, engine=engine
                )
            else:
                # Rebuild the engine empty, then restore the label-level
                # snapshot; priorities are a pure function of (seed, node),
                # so future insertions draw the same IDs as an uninterrupted
                # run (which is what makes resume exact).
                self._maintainer = DynamicMIS(seed=spec.seed, engine=engine)
                self._maintainer.engine.restore(_checkpoint.snapshot)
                self._maintainer._statistics = copy.deepcopy(_checkpoint.statistics)
        else:
            kwargs: Dict[str, Any] = {"seed": spec.seed}
            scheduler = spec.backend.build_scheduler()
            if scheduler is not None:
                kwargs["scheduler"] = scheduler
            if _checkpoint is None:
                self._network = create_network(
                    spec.backend.protocol,
                    network=spec.backend.network,
                    initial_graph=self._initial_graph,
                    **kwargs,
                )
            else:
                # Same shape as the sequential path: build the simulator
                # empty, then restore the knowledge-level NetworkSnapshot
                # (label-keyed, so the dict and fast cores restore each
                # other's checkpoints).
                self._network = create_network(
                    spec.backend.protocol, network=spec.backend.network, **kwargs
                )
                self._network.restore(_checkpoint.snapshot)
        self._pool = None
        self._attach_parallel(default_workers)
        if _checkpoint is not None:
            self._position = _checkpoint.position
            self._unit_index = self._unit_for_position(_checkpoint.position)
            self._elapsed = _checkpoint.elapsed_s
        self._adversary: Optional[AdaptiveAdversary] = None
        if self._dynamic:
            self._adversary = AdaptiveAdversary(
                lambda: self._runner.mis(),
                spec.workload.num_changes - self._position,
                rng_seed=spec.workload.seed,
            )
            if _checkpoint is not None and _checkpoint.workload_state is not None:
                self._adversary.setstate(_checkpoint.workload_state)
        self._journal: Optional[DeltaJournal] = None
        if record_journal:
            self._journal = self._create_journal()

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def spec(self) -> ScenarioSpec:
        """The scenario being run."""
        return self._spec

    @property
    def parallel_pool(self):
        """The attached :class:`~repro.parallel.pool.WorkerPool`, or ``None``.

        ``None`` means the session evaluates serially -- no parallel block in
        the spec, an effectively-serial one (``workers <= 1`` or backend
        ``"serial"``), or a best-effort ``default_workers`` hint on a backend
        without pool support.
        """
        return self._pool

    @property
    def initial_graph(self) -> DynamicGraph:
        """The materialized starting graph (do not mutate)."""
        return self._initial_graph

    @property
    def changes(self) -> List[TopologyChange]:
        """The materialized workload (for dynamic workloads: generated so far)."""
        return self._changes

    @property
    def maintainer(self) -> Optional[DynamicMIS]:
        """The sequential maintainer (``None`` for protocol sessions)."""
        return self._maintainer

    @property
    def network(self):
        """The distributed simulator (``None`` for sequential sessions)."""
        return self._network

    @property
    def position(self) -> int:
        """Number of individual changes applied so far."""
        return self._position

    @property
    def num_changes(self) -> int:
        """Total workload length (the declared budget for dynamic workloads)."""
        if self._dynamic:
            return self._spec.workload.num_changes
        return len(self._changes)

    @property
    def done(self) -> bool:
        """Whether the whole workload has been applied."""
        if self._dynamic:
            return self._exhausted or self._position >= self.num_changes
        return self._unit_index >= len(self._batches)

    @property
    def elapsed_s(self) -> float:
        """Wall-clock seconds spent inside apply calls (resumed sessions
        continue the interrupted run's clock from the checkpoint)."""
        return self._elapsed

    def mis(self) -> Set[Node]:
        """The backend's current maximal independent set."""
        return self._runner.mis()

    def states(self) -> Dict[Node, bool]:
        """The backend's full output map ``node -> in MIS?``."""
        return self._runner.states()

    @property
    def graph(self):
        """The backend's current graph view."""
        return self._runner.graph

    def verify(self) -> None:
        """Assert the backend's invariant (protocol: against the spec engine)."""
        if self._maintainer is not None:
            self._maintainer.verify()
        else:
            self._network.verify(reference_engine=self._spec.backend.engine)

    def status(self) -> Dict[str, Any]:
        """A JSON-ready progress summary of the running session.

        This is the introspection hook of the service layer
        (:mod:`repro.service`): cheap enough to answer on every request,
        carrying only plain values.
        """
        return {
            "name": self._spec.name,
            "runner": self._spec.backend.runner,
            "backend": self._spec.backend.describe(),
            "position": self._position,
            "num_changes": self.num_changes,
            "done": self.done,
            "elapsed_s": self._elapsed,
            "mis_size": len(self.mis()),
            "num_nodes": self.graph.num_nodes(),
        }

    def metrics_summary(self) -> Dict[str, Any]:
        """The backend's accumulated per-change cost summary (JSON-ready).

        Sequential sessions report the maintainer statistics (Theorem 1
        quantities), protocol sessions the simulator's complexity-measure
        means.  :meth:`run` folds the same summary into its
        :class:`ScenarioResult`; the service layer serves it mid-run.
        """
        if self._maintainer is not None:
            stats = self._maintainer.statistics
            summary: Dict[str, Any] = {
                "mean_influenced_size": stats.mean_influenced_size(),
                "mean_adjustments": stats.mean_adjustments(),
                "max_adjustments": stats.max_adjustments(),
                "mean_update_work": stats.mean_update_work(),
            }
            if stats.num_batches:
                summary["num_batches"] = stats.num_batches
                summary["mean_batch_adjustments_per_change"] = (
                    stats.mean_batch_adjustments_per_change()
                )
            return summary
        return self._network.metrics.summary()

    @property
    def _runner(self):
        return self._maintainer if self._maintainer is not None else self._network

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def step(self):
        """Apply the next change (or batch); notify observers; return the record.

        Returns ``None`` when the workload is exhausted (for adaptive
        workloads: also when the adversary finds no MIS node left to delete).
        """
        if self.done:
            return None
        self._notify_start()
        unit = self._next_unit()
        if unit is None:
            return None
        removed_edges = None
        if self._journal is not None:
            removed_edges = self._journal.pre_change(self._runner, unit[0])
        start = time.perf_counter()
        if self._spec.batch_size and self._maintainer is not None:
            record = self._maintainer.apply_batch(unit)
        elif self._maintainer is not None:
            record = self._maintainer.apply(unit[0])
        else:
            record = self._network.apply(unit[0])
        self._elapsed += time.perf_counter() - start
        if self._journal is not None:
            self._journal.record_change(
                self._runner,
                unit[0],
                record,
                removed_edges=removed_edges,
                workload_state=(
                    self._adversary.getstate() if self._adversary is not None else None
                ),
                elapsed_s=self._elapsed,
            )
        if self._spec.batch_size:
            for observer in self._observers:
                observer.on_batch(self._unit_index, unit, record)
        else:
            for observer in self._observers:
                observer.on_change(self._position, unit[0], record)
        self._unit_index += 1
        self._position += len(unit)
        return record

    def _next_unit(self) -> Optional[List[TopologyChange]]:
        if not self._dynamic:
            return self._batches[self._unit_index]
        try:
            change = next(self._adversary)
        except StopIteration:
            self._exhausted = True
            return None
        self._changes.append(change)
        return [change]

    def __iter__(self) -> Iterator:
        """Yield the per-unit records while streaming to the end."""
        while not self.done:
            record = self.step()
            if record is None:
                break
            yield record

    def run(self, verify: bool = True) -> ScenarioResult:
        """Stream to the end and return the :class:`ScenarioResult`.

        ``elapsed_s`` covers the apply calls of the whole run: a resumed
        session starts from the checkpoint's accumulated clock, so
        ``per_change_us`` stays an honest whole-run average.
        """
        self._notify_start()
        while not self.done:
            if self.step() is None:
                break
        if verify:
            self.verify()
        result = self._build_result(verified=verify)
        for observer in self._observers:
            observer.on_end(self, result)
        return result

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self, full: bool = False) -> SessionCheckpoint:
        """Capture a resumable checkpoint of the current state.

        Works for every registered backend: sequential sessions snapshot the
        engine (label-level), protocol sessions snapshot the simulator
        (knowledge-level, per-edge).  The backend must satisfy the
        :class:`~repro.core.state_api.Checkpointable` contract -- all
        built-ins do; a third-party backend without a snapshot/restore pair
        raises :class:`TypeError` here.

        Journal-recording sessions return a *delta* checkpoint by default:
        the shared journal base plus the entry slice up to the current
        position -- O(|touched|) to take instead of a full O(n + m)
        snapshot (bench A5d).  Restoring folds the entries forward
        (:meth:`SessionCheckpoint.resolve`), landing on the identical
        state.  ``full=True`` forces the classic full snapshot.
        """
        backend = self._checkpoint_backend()
        if self._journal is not None and not full:
            return SessionCheckpoint(
                spec=self._spec,
                position=self._position,
                snapshot=self._journal.base_snapshot,
                statistics=self._journal.base_statistics,
                workload_state=self._journal.base_workload_state,
                elapsed_s=self._journal.base_elapsed_s,
                journal=self._journal.slice(self._position),
            )
        return SessionCheckpoint(
            spec=self._spec,
            position=self._position,
            snapshot=backend.snapshot(),
            statistics=(
                copy.deepcopy(self._maintainer.statistics)
                if self._maintainer is not None
                else None
            ),
            workload_state=(
                self._adversary.getstate() if self._adversary is not None else None
            ),
            elapsed_s=self._elapsed,
        )

    @property
    def journal(self) -> Optional[DeltaJournal]:
        """The recorded delta journal (``None`` unless ``record_journal``)."""
        return self._journal

    def replay_to(
        self,
        position: int,
        observers: Iterable[ScenarioObserver] = (),
        record_journal: bool = False,
    ) -> "Session":
        """Time travel: a fresh session positioned at ``position`` of this run.

        Folds the recorded journal up to ``position`` (any point between the
        journal base and the current position) and resumes from it, so the
        returned session continues from exactly that state -- same outputs,
        statistics, scheduler stream and adversary stream as the original
        run had there.  Requires ``record_journal=True`` at creation.
        """
        if self._journal is None:
            raise JournalError(
                "replay_to needs a recorded journal; create the session with "
                "record_journal=True"
            )
        checkpoint = SessionCheckpoint(
            spec=self._spec,
            position=position,
            snapshot=self._journal.base_snapshot,
            statistics=self._journal.base_statistics,
            workload_state=self._journal.base_workload_state,
            elapsed_s=self._journal.base_elapsed_s,
            journal=self._journal.slice(position),
        )
        return Session.resume(
            checkpoint, observers=observers, record_journal=record_journal
        )

    @classmethod
    def resume(
        cls,
        checkpoint: SessionCheckpoint,
        observers: Iterable[ScenarioObserver] = (),
        engine: Optional[str] = None,
        network: Optional[str] = None,
        record_journal: bool = False,
        default_workers: Optional[int] = None,
    ) -> "Session":
        """Continue a checkpointed scenario in a fresh session.

        ``engine`` (sequential sessions) and ``network`` (protocol sessions)
        optionally resume on a *different* registered backend -- both
        snapshot flavors are label-keyed, so any backend of the same family
        can restore them.  The override is folded into the resumed session's
        spec, so results attribute the right backend and a re-checkpoint
        keeps it.  ``default_workers`` is the same best-effort parallelism
        hint the constructor takes; checkpoints carry no pool state (a pool
        is pure acceleration), so it simply applies to the resumed session.
        """
        overrides = {}
        if engine is not None:
            overrides["engine"] = engine
        if network is not None:
            overrides["network"] = network
        if overrides:
            checkpoint = dataclasses.replace(
                checkpoint, spec=checkpoint.spec.with_backend(**overrides)
            )
        return cls(
            checkpoint.spec,
            observers=observers,
            _checkpoint=checkpoint,
            record_journal=record_journal,
            default_workers=default_workers,
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _attach_parallel(self, default_workers: Optional[int]) -> None:
        """Build and attach the worker pool the spec (or the host) asked for.

        An explicit ``backend.parallel`` block is strict: the named backend
        must expose ``attach_parallel`` (the fast engine and fast networks
        do) or the session refuses to construct, because silently dropping a
        requested pool would misattribute benchmark results.  A bare
        ``default_workers`` hint is best-effort: it comes from service-level
        configuration that applies to whatever backends clients create, so
        backends without pool support just run serial.
        """
        parallel = self._spec.backend.parallel
        strict = parallel is not None
        if parallel is None and default_workers and int(default_workers) > 1:
            parallel = ParallelSpec(workers=int(default_workers))
        if parallel is None:
            return
        pool = parallel.build_pool()
        if pool is None:
            return
        target = (
            self._maintainer.engine if self._maintainer is not None else self._network
        )
        attach = getattr(target, "attach_parallel", None)
        if attach is None:
            pool.close()
            if strict:
                raise ScenarioSpecError(
                    f"backend {type(target).__name__} does not support parallel "
                    f"evaluation; the parallel block needs engine 'fast' "
                    f"(sequential) or network 'fast' (protocol)"
                )
            return
        attach(pool)
        self._pool = pool

    def _checkpoint_backend(self):
        backend = self._maintainer.engine if self._maintainer is not None else self._network
        if not isinstance(backend, Checkpointable):
            raise TypeError(
                f"backend {type(backend).__name__} implements no snapshot/restore "
                "pair (see repro.core.state_api.Checkpointable)"
            )
        return backend

    def _create_journal(self) -> DeltaJournal:
        if self._spec.batch_size:
            raise JournalError(
                "journal recording needs an unbatched workload (batch_size=0); "
                "a batched repair wave has no per-change touched sets"
            )
        backend = self._checkpoint_backend()
        return DeltaJournal(
            backend.snapshot(),
            base_position=self._position,
            base_statistics=(
                copy.deepcopy(self._maintainer.statistics)
                if self._maintainer is not None
                else None
            ),
            base_workload_state=(
                self._adversary.getstate() if self._adversary is not None else None
            ),
            base_elapsed_s=self._elapsed,
        )

    def _notify_start(self) -> None:
        if not self._started:
            self._started = True
            for observer in self._observers:
                observer.on_start(self)

    def _chunk(
        self, changes: Sequence[TopologyChange], batch_size: int
    ) -> List[List[TopologyChange]]:
        if not batch_size:
            return [[change] for change in changes]
        return [
            list(changes[start : start + batch_size])
            for start in range(0, len(changes), batch_size)
        ]

    def _unit_for_position(self, position: int) -> int:
        if self._dynamic:
            return position  # dynamic workloads are never batched
        consumed = 0
        for index, unit in enumerate(self._batches):
            if consumed == position:
                return index
            consumed += len(unit)
        if consumed != position:
            raise ValueError(
                f"checkpoint position {position} does not align with the batch "
                f"boundaries of batch_size={self._spec.batch_size}"
            )
        return len(self._batches)

    def _build_result(self, verified: bool) -> ScenarioResult:
        summary = self.metrics_summary()
        return ScenarioResult(
            name=self._spec.name,
            runner=self._spec.backend.runner,
            backend=self._spec.backend.describe(),
            num_changes=self._position,
            elapsed_s=self._elapsed,
            final_mis_size=len(self.mis()),
            final_num_nodes=self.graph.num_nodes(),
            verified=verified,
            summary=summary,
        )


def run_scenario(
    spec: ScenarioSpec,
    observers: Iterable[ScenarioObserver] = (),
    verify: bool = True,
) -> ScenarioResult:
    """Build a :class:`Session` for ``spec``, run it to the end, return the result."""
    return Session(spec, observers=observers).run(verify=verify)


def run_scenario_grid(
    spec: ScenarioSpec,
    backends: Sequence[Tuple[str, Dict[str, Any]]],
    verify: bool = True,
) -> List[ScenarioResult]:
    """Run the *same* scenario across a grid of backend overrides.

    ``backends`` is a list of ``(label, overrides)`` pairs; each override
    dict is applied to the spec's :class:`~repro.scenario.spec.BackendSpec`
    (e.g. ``("fast", {"engine": "fast"})``).  The workload is identical by
    construction -- it re-materializes from the same spec -- which is what
    benchmark sweeps and conformance comparisons need.  (Adaptive workloads
    are generated per backend; because all backends are observably
    identical, the generated streams coincide too.)
    """
    results = []
    for label, overrides in backends:
        variant = spec.with_backend(**overrides)
        result = run_scenario(variant, verify=verify)
        result.name = f"{spec.name or 'scenario'}[{label}]"
        results.append(result)
    return results
