"""Delta journal and time travel for scenario sessions.

A full :class:`~repro.distributed.state.NetworkSnapshot` /
:class:`~repro.core.engine_api.EngineSnapshot` pays O(n + m) per capture --
~0.5 s at n=20000 (bench A5c) -- which makes high-frequency checkpoint
cadences impractical.  But between two quiescent states only the *touched*
sets differ: the nodes and edges the change added or removed, the nodes
whose output flipped, one metric record, and the scheduler cursor/RNG
position.  A :class:`DeltaJournal` records exactly that per change
(:class:`JournalEntry`) and folds any prefix of entries back into a full
snapshot on demand (:meth:`DeltaJournal.fold`), so a journal-backed
checkpoint costs O(|delta|) to take and O(n + m) only when actually
restored.

The fold never records per-edge knowledge deltas.  It relies on the
quiescence knowledge invariant the conformance suite asserts on every
simulator: at stability ``knowledge[(u, v)] == (states[v], True)`` for both
directions of every edge, so the knowledge map is a pure function of the
folded topology and states
(:func:`repro.distributed.state.quiescent_knowledge`).  The contract test
"journal-folded snapshot == fresh full snapshot" in
``tests/test_scenario_journal.py`` machine-checks this, property-tested over
seeded churn including free-list id reuse in the fast core.

On top of the journal sit the time-travel primitives the sts debugger built
for SDN traces (record / replay-to / bisect):

* :meth:`repro.scenario.session.Session.replay_to` -- rewind a recorded
  session to any position and continue from there in a fresh session;
* :func:`bisect_first_divergence` -- binary-search a recorded run for the
  first change at which a second backend (or a resumed run) disagrees with
  the reference, the one-command repro for a CI divergence artifact
  (``repro-mis bisect``).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.engine_api import EngineSnapshot
from repro.distributed.metrics import ChangeMetrics
from repro.distributed.state import (
    NetworkSnapshot,
    copy_metric_records,
    quiescent_knowledge,
    scheduler_cursor_of,
    scheduler_state_of,
)
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    TopologyChange,
)

Node = Hashable


class JournalError(RuntimeError):
    """A delta journal could not record, slice or fold (bad position, batching)."""


@dataclass(frozen=True)
class JournalEntry:
    """The touched sets of one applied change -- everything a fold needs.

    ``states`` holds the *post-change* outputs of the touched nodes only
    (state-code strings for network journals, booleans for engine journals).
    The scheduler cursor/state and the workload RNG state are absolute
    values as of this entry, not deltas, so a fold reads them off the last
    applied entry.
    """

    position: int
    change_kind: str
    nodes_added: Tuple[Tuple[Node, Tuple], ...] = ()
    nodes_removed: Tuple[Node, ...] = ()
    edges_added: Tuple[Tuple[Node, Node], ...] = ()
    edges_removed: Tuple[Tuple[Node, Node], ...] = ()
    states: Tuple[Tuple[Node, Any], ...] = ()
    metric: Optional[ChangeMetrics] = None
    stats_row: Optional[Tuple] = None
    scheduler_cursor: int = 0
    scheduler_state: Optional[Tuple] = None
    workload_state: Optional[Tuple] = None
    elapsed_s: float = 0.0


@dataclass(frozen=True)
class FoldedState:
    """Result of :meth:`DeltaJournal.fold`: a full checkpointable state."""

    snapshot: Any  # NetworkSnapshot or EngineSnapshot
    position: int
    statistics: Optional[Any] = None
    workload_state: Optional[Tuple] = None
    elapsed_s: float = 0.0


def _canon_edge(u: Node, v: Node) -> Tuple[Node, Node]:
    """Orientation-free dict key for an undirected edge."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


class DeltaJournal:
    """Per-change delta log over one base snapshot.

    The base (snapshot plus the runner-side extras: sequential statistics,
    adaptive-adversary RNG state, accumulated wall clock) is treated as
    immutable and shared by reference -- :meth:`slice` and journal-backed
    checkpoints alias it instead of copying O(n + m) state.

    One journal records one *unbatched* run: every entry is a single
    :class:`~repro.workloads.changes.TopologyChange` (batched repair waves
    have no per-change touched sets).
    """

    def __init__(
        self,
        base_snapshot,
        base_position: int = 0,
        *,
        base_statistics=None,
        base_workload_state: Optional[Tuple] = None,
        base_elapsed_s: float = 0.0,
        entries: Sequence[JournalEntry] = (),
    ) -> None:
        if not isinstance(base_snapshot, (NetworkSnapshot, EngineSnapshot)):
            raise JournalError(
                f"cannot journal over a {type(base_snapshot).__name__}; expected "
                "a NetworkSnapshot or an EngineSnapshot"
            )
        if base_position < 0:
            raise JournalError(f"base position cannot be negative, got {base_position}")
        self._base_snapshot = base_snapshot
        self._base_position = int(base_position)
        self._base_statistics = base_statistics
        self._base_workload_state = base_workload_state
        self._base_elapsed_s = float(base_elapsed_s)
        self._entries: List[JournalEntry] = list(entries)
        for index, entry in enumerate(self._entries):
            expected = self._base_position + index + 1
            if entry.position != expected:
                raise JournalError(
                    f"journal entries are not contiguous: entry {index} covers "
                    f"position {entry.position}, expected {expected}"
                )

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def base_snapshot(self):
        """The full snapshot every fold starts from (shared, do not mutate)."""
        return self._base_snapshot

    @property
    def base_position(self) -> int:
        """How many changes the base snapshot already includes."""
        return self._base_position

    @property
    def base_statistics(self):
        """Sequential statistics at the base (``None`` for protocol journals)."""
        return self._base_statistics

    @property
    def base_workload_state(self) -> Optional[Tuple]:
        """Adaptive-adversary RNG state at the base (``None`` when static)."""
        return self._base_workload_state

    @property
    def base_elapsed_s(self) -> float:
        """Accumulated apply wall clock at the base."""
        return self._base_elapsed_s

    @property
    def entries(self) -> Tuple[JournalEntry, ...]:
        """The recorded entries, oldest first."""
        return tuple(self._entries)

    @property
    def position(self) -> int:
        """The position the newest entry ends at (== base when empty)."""
        return self._base_position + len(self._entries)

    @property
    def is_network(self) -> bool:
        """Whether this journal records a protocol (network) session."""
        return isinstance(self._base_snapshot, NetworkSnapshot)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def pre_change(self, backend, change: TopologyChange) -> Tuple[Tuple[Node, Node], ...]:
        """Capture what the change is about to destroy (call *before* apply).

        Only node deletions need a pre-image: the deleted node's incident
        edges are gone from the backend by the time
        :meth:`record_change` runs.  Returns the edges the caller must pass
        back as ``removed_edges``.
        """
        if isinstance(change, NodeDeletion):
            return tuple(
                (change.node, neighbor)
                for neighbor in backend.graph.neighbors(change.node)
            )
        return ()

    def record_change(
        self,
        backend,
        change: TopologyChange,
        record,
        *,
        removed_edges: Optional[Tuple[Tuple[Node, Node], ...]] = None,
        workload_state: Optional[Tuple] = None,
        elapsed_s: float = 0.0,
    ) -> JournalEntry:
        """Append one entry describing the change just applied to ``backend``.

        ``record`` is the backend's own per-change result -- a
        :class:`~repro.distributed.metrics.ChangeMetrics` for protocol
        sessions (its ``adjusted_nodes`` are the touched outputs), an
        :class:`~repro.core.template.UpdateReport` for sequential ones (its
        ``influenced_set`` is a superset of the flipped nodes, which is all
        a fold needs).
        """
        position = self.position + 1
        nodes_added: Tuple[Tuple[Node, Tuple], ...] = ()
        nodes_removed: Tuple[Node, ...] = ()
        edges_added: Tuple[Tuple[Node, Node], ...] = ()
        edges_removed = () if removed_edges is None else tuple(removed_edges)
        if isinstance(change, EdgeInsertion):
            edges_added = ((change.u, change.v),)
        elif isinstance(change, EdgeDeletion):
            if not edges_removed:
                edges_removed = ((change.u, change.v),)
        elif isinstance(change, (NodeInsertion, NodeUnmuting)):
            nodes_added = ((change.node, tuple(backend.priorities.key(change.node))),)
            edges_added = tuple(
                (change.node, neighbor) for neighbor in change.neighbors
            )
        elif isinstance(change, NodeDeletion):
            nodes_removed = (change.node,)
            if removed_edges is None:
                # () is a legal pre-image (isolated node); only a *missing*
                # capture means the caller skipped pre_change().
                raise JournalError(
                    "node deletions must capture incident edges before apply; "
                    "call pre_change() and pass its result as removed_edges"
                )
        else:
            raise JournalError(f"unknown change type: {change!r}")

        outputs = backend.states()
        touched = set(self._touched_nodes(record))
        touched.update(node for node, _ in nodes_added)
        states = tuple(
            (node, self._encode_output(outputs[node]))
            for node in sorted(touched, key=repr)
            if node in outputs
        )
        entry = JournalEntry(
            position=position,
            change_kind=change.kind,
            nodes_added=nodes_added,
            nodes_removed=nodes_removed,
            edges_added=edges_added,
            edges_removed=edges_removed,
            states=states,
            metric=copy.deepcopy(record) if self.is_network else None,
            stats_row=None if self.is_network else self._stats_row(record),
            scheduler_cursor=scheduler_cursor_of(backend),
            scheduler_state=scheduler_state_of(backend),
            workload_state=workload_state,
            elapsed_s=float(elapsed_s),
        )
        self._entries.append(entry)
        return entry

    def _touched_nodes(self, record):
        if self.is_network:
            return record.adjusted_nodes
        return record.influenced_set

    def _encode_output(self, in_mis: bool):
        if self.is_network:
            return "M" if in_mis else "M_BAR"
        return bool(in_mis)

    @staticmethod
    def _stats_row(report) -> Tuple:
        # Mirrors MaintainerStatistics.record field for field.
        return (
            report.influenced_size,
            report.num_adjustments,
            report.num_levels,
            report.state_flips,
            report.update_work,
            report.change_type,
        )

    # ------------------------------------------------------------------
    # Slicing and folding
    # ------------------------------------------------------------------
    def slice(self, position: int) -> "DeltaJournal":
        """A journal covering the same base but only entries up to ``position``.

        O(entries) -- the base snapshot is shared by reference, which is what
        makes journal-backed checkpoints cheap to take.
        """
        self._check_position(position)
        return DeltaJournal(
            self._base_snapshot,
            base_position=self._base_position,
            base_statistics=self._base_statistics,
            base_workload_state=self._base_workload_state,
            base_elapsed_s=self._base_elapsed_s,
            entries=self._entries[: position - self._base_position],
        )

    def fold(self, position: Optional[int] = None) -> FoldedState:
        """Fold the entries up to ``position`` into a full snapshot.

        The result is contract-equal to the snapshot a live backend would
        have produced at that position (the ``tests/test_scenario_journal.py``
        contract), so it restores into any registered backend of the same
        family.
        """
        if position is None:
            position = self.position
        self._check_position(position)
        applied = self._entries[: position - self._base_position]
        base = self._base_snapshot

        nodes = dict.fromkeys(base.nodes)
        keys: Dict[Node, Tuple] = dict(base.priority_keys)
        edges = {_canon_edge(u, v): (u, v) for u, v in base.edges}
        states = dict(base.states)
        workload_state = self._base_workload_state
        elapsed_s = self._base_elapsed_s
        if self.is_network:
            metrics = list(copy_metric_records(base.metrics))
            scheduler_cursor = base.scheduler_cursor
            scheduler_state = base.scheduler_state
            statistics = None
        else:
            metrics = []
            scheduler_cursor = 0
            scheduler_state = None
            statistics = copy.deepcopy(self._base_statistics)

        for entry in applied:
            for node, key in entry.nodes_added:
                nodes[node] = None
                keys[node] = tuple(key)
            for u, v in entry.edges_added:
                edges[_canon_edge(u, v)] = (u, v)
            for u, v in entry.edges_removed:
                edges.pop(_canon_edge(u, v), None)
            for node in entry.nodes_removed:
                nodes.pop(node, None)
                keys.pop(node, None)
                states.pop(node, None)
            for node, value in entry.states:
                states[node] = value
            if self.is_network:
                metrics.append(copy.deepcopy(entry.metric))
                scheduler_cursor = entry.scheduler_cursor
                scheduler_state = entry.scheduler_state
            elif statistics is not None and entry.stats_row is not None:
                influenced, adjustments, depth, flips, work, kind = entry.stats_row
                statistics.influenced_sizes.append(influenced)
                statistics.adjustments.append(adjustments)
                statistics.propagation_depths.append(depth)
                statistics.state_flips.append(flips)
                statistics.update_work.append(work)
                statistics.change_kinds.append(kind)
            workload_state = entry.workload_state
            elapsed_s = entry.elapsed_s

        folded_edges = tuple(edges.values())
        if self.is_network:
            snapshot = NetworkSnapshot(
                protocol=base.protocol,
                nodes=tuple(nodes),
                edges=folded_edges,
                states=states,
                priority_keys=keys,
                knowledge=quiescent_knowledge(folded_edges, states),
                scheduler_cursor=scheduler_cursor,
                metrics=tuple(metrics),
                scheduler_state=scheduler_state,
            )
        else:
            snapshot = EngineSnapshot(
                nodes=tuple(nodes),
                edges=folded_edges,
                states=states,
                priority_keys=keys,
            )
        return FoldedState(
            snapshot=snapshot,
            position=position,
            statistics=statistics,
            workload_state=workload_state,
            elapsed_s=elapsed_s,
        )

    def _check_position(self, position: int) -> None:
        if not self._base_position <= position <= self.position:
            raise JournalError(
                f"position {position} is outside this journal's range "
                f"[{self._base_position}, {self.position}]"
            )


# ----------------------------------------------------------------------
# Bisecting a recorded run for its first divergent change
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BisectResult:
    """Outcome of :func:`bisect_first_divergence`."""

    diverged: bool
    #: First position (1-based change index) at which the candidate run's
    #: outputs differ from the reference; ``None`` when no divergence.
    position: Optional[int]
    #: The change applied at that position (``None`` at position 0: the
    #: backends disagreed before any change was applied).
    change: Optional[TopologyChange]
    num_changes: int
    probes: Tuple[int, ...] = ()
    detail: str = ""


def bisect_first_divergence(
    spec,
    *,
    networks: Optional[Sequence[str]] = None,
    engines: Optional[Sequence[str]] = None,
    resume_at: Optional[int] = None,
    through_json: bool = True,
) -> BisectResult:
    """Binary-search a scenario for the first change where two runs diverge.

    The *reference* run streams the scenario once with journal recording on,
    so every intermediate state folds out of the journal for free.  The
    *candidate* run is then probed at O(log N) positions, each probe
    re-running it from scratch up to the probed position and comparing the
    full output maps:

    * ``networks=(a, b)`` / ``engines=(a, b)`` -- reference on backend ``a``,
      candidate on backend ``b`` (a cross-backend differential bisect);
    * ``resume_at=p`` -- candidate is the *same* backend, but checkpointed at
      ``p`` (through the JSON codec when ``through_json``) and resumed, so
      the bisect pins down where a checkpoint/resume round-trip loses state.

    Both may be combined.  At least one must be given -- otherwise the two
    runs are identical by construction.
    """
    from repro.scenario.session import Session

    if networks is not None and engines is not None:
        raise ValueError("pass networks= or engines=, not both")
    pair = networks if networks is not None else engines
    if pair is not None and len(pair) != 2:
        raise ValueError("need exactly (reference, candidate) backend names")
    if pair is None and resume_at is None:
        raise ValueError(
            "nothing to compare: pass two backends (networks=/engines=) "
            "and/or a resume_at position"
        )
    if resume_at is not None and resume_at < 0:
        raise ValueError(f"resume_at cannot be negative, got {resume_at}")

    if networks is not None:
        reference_spec = spec.with_backend(network=networks[0])
        candidate_spec = spec.with_backend(network=networks[1])
    elif engines is not None:
        reference_spec = spec.with_backend(engine=engines[0])
        candidate_spec = spec.with_backend(engine=engines[1])
    else:
        reference_spec = candidate_spec = spec

    reference = Session(reference_spec, record_journal=True)
    while not reference.done:
        if reference.step() is None:
            break
    journal = reference.journal
    num_changes = reference.position
    reference_changes = list(reference.changes)

    probes: List[int] = []

    def probe(position: int) -> Tuple[bool, str]:
        """Run the candidate up to ``position`` and compare output maps."""
        probes.append(position)
        session = Session(candidate_spec)
        plain = position if resume_at is None else min(position, resume_at)
        for _ in range(plain):
            if session.step() is None:
                return False, f"candidate run exhausted before position {position}"
        if resume_at is not None and position > resume_at:
            checkpoint = session.checkpoint()
            if through_json:
                from repro.scenario.checkpoint_io import (
                    checkpoint_from_dict,
                    checkpoint_to_dict,
                )

                checkpoint = checkpoint_from_dict(checkpoint_to_dict(checkpoint))
            session = Session.resume(checkpoint)
            for _ in range(position - resume_at):
                if session.step() is None:
                    return False, f"resumed run exhausted before position {position}"
        detail = _divergence_detail(journal, session, position)
        return detail is None, detail or ""

    equal_at_end, detail = probe(num_changes)
    if equal_at_end:
        return BisectResult(
            diverged=False,
            position=None,
            change=None,
            num_changes=num_changes,
            probes=tuple(probes),
        )
    equal_at_start, start_detail = probe(0)
    if not equal_at_start:
        return BisectResult(
            diverged=True,
            position=0,
            change=None,
            num_changes=num_changes,
            probes=tuple(probes),
            detail=start_detail,
        )
    low, high = 0, num_changes  # invariant: equal at low, diverged at high
    while high - low > 1:
        mid = (low + high) // 2
        equal, mid_detail = probe(mid)
        if equal:
            low = mid
        else:
            high, detail = mid, mid_detail
    change = reference_changes[high - 1] if high - 1 < len(reference_changes) else None
    return BisectResult(
        diverged=True,
        position=high,
        change=change,
        num_changes=num_changes,
        probes=tuple(probes),
        detail=detail,
    )


def _fold_outputs(journal: DeltaJournal, position: int) -> Dict[Node, bool]:
    """The reference's output map at ``position``, as ``node -> in MIS?``."""
    snapshot = journal.fold(position).snapshot
    if isinstance(snapshot, NetworkSnapshot):
        return {node: value == "M" for node, value in snapshot.states.items()}
    return dict(snapshot.states)


def _divergence_detail(
    journal: DeltaJournal, session, position: int
) -> Optional[str]:
    """How the candidate ``session`` at ``position`` differs from the journal.

    Compares the full output map *and* the accumulated per-change records
    (metrics for protocol runs, statistics rows for sequential ones) --
    outputs alone are too weak a probe: the asynchronous protocol
    self-stabilizes to the same MIS under any delays, so a scheduling or
    metric divergence only ever shows up in the records.  Comparing the
    whole accumulated prefix also keeps the bisect predicate monotone.
    ``None`` means no divergence.
    """
    expected = _fold_outputs(journal, position)
    actual = session.states()
    if expected != actual:
        diff = {
            node: (expected.get(node), actual.get(node))
            for node in set(expected) | set(actual)
            if expected.get(node) != actual.get(node)
        }
        preview = dict(sorted(diff.items(), key=lambda item: repr(item[0]))[:8])
        return (
            f"{len(diff)} node outputs differ at position {position} "
            f"(reference vs candidate): {preview}"
        )
    count = position - journal.base_position
    if journal.is_network:
        expected_records = [m.as_dict() for m in journal.base_snapshot.metrics]
        expected_records += [e.metric.as_dict() for e in journal.entries[:count]]
        actual_records = [r.as_dict() for r in session.network.metrics.records]
    else:

        def stats_rows(stats) -> List[Tuple]:
            if stats is None:
                return []
            return list(
                zip(
                    stats.influenced_sizes,
                    stats.adjustments,
                    stats.propagation_depths,
                    stats.state_flips,
                    stats.update_work,
                    stats.change_kinds,
                )
            )

        expected_records = stats_rows(journal.base_statistics)
        expected_records += [journal.entries[index].stats_row for index in range(count)]
        actual_records = stats_rows(session.maintainer.statistics)
    if expected_records == actual_records:
        return None
    limit = min(len(expected_records), len(actual_records))
    first = next(
        (i for i in range(limit) if expected_records[i] != actual_records[i]), limit
    )
    if first == limit:
        return (
            f"accumulated record counts differ at position {position}: "
            f"reference has {len(expected_records)}, candidate {len(actual_records)}"
        )
    return (
        f"per-change record {first + 1} differs (reference vs candidate): "
        f"{expected_records[first]!r} vs {actual_records[first]!r}"
    )
