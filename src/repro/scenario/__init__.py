"""``repro.scenario`` -- the declarative front door of the library.

One :class:`ScenarioSpec` (graph family + workload + backend + metric sinks,
with exact dict/JSON round-trips) describes a whole experiment; one
:class:`Session` streams it through any registered engine or network backend
with checkpoint/resume and pluggable observers.  The CLI's ``run`` command,
the benchmark harness's ``run_scenario`` entry and the differential
conformance harnesses all build on this package -- see the README's
"Scenarios" section for a worked example.
"""

from repro.scenario.session import (
    CheckpointUnsupportedError,
    ScenarioResult,
    Session,
    SessionCheckpoint,
    run_scenario,
    run_scenario_grid,
)
from repro.scenario.sinks import (
    CallbackSink,
    JsonlSink,
    ScenarioObserver,
    SummarySink,
    UnknownSinkError,
    available_sinks,
    create_sink,
    register_sink,
    unregister_sink,
)
from repro.scenario.spec import (
    RUNNER_NAMES,
    WORKLOAD_KINDS,
    BackendSpec,
    GraphSpec,
    ScenarioSpec,
    ScenarioSpecError,
    WorkloadSpec,
)

__all__ = [
    "ScenarioSpec",
    "GraphSpec",
    "WorkloadSpec",
    "BackendSpec",
    "ScenarioSpecError",
    "WORKLOAD_KINDS",
    "RUNNER_NAMES",
    "Session",
    "SessionCheckpoint",
    "ScenarioResult",
    "CheckpointUnsupportedError",
    "run_scenario",
    "run_scenario_grid",
    "ScenarioObserver",
    "SummarySink",
    "JsonlSink",
    "CallbackSink",
    "UnknownSinkError",
    "register_sink",
    "unregister_sink",
    "available_sinks",
    "create_sink",
]
