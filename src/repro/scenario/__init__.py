"""``repro.scenario`` -- the declarative front door of the library.

One :class:`ScenarioSpec` (graph family + workload + backend + metric sinks,
with exact dict/JSON round-trips) describes a whole experiment; one
:class:`Session` streams it through any registered engine or network backend
with checkpoint/resume and pluggable observers.  Checkpoints work for every
backend the registries know -- sequential sessions snapshot the engine,
protocol sessions snapshot the simulator's knowledge-level state -- and
serialize to JSON files through :mod:`repro.scenario.checkpoint_io`.  The
CLI's ``run`` command, the benchmark harness's ``run_scenario`` entry and
the differential conformance harnesses all build on this package -- see the
README's "Scenarios" and "Checkpointing" sections for worked examples.
"""

from repro.scenario.checkpoint_io import (
    CheckpointFormatError,
    checkpoint_from_dict,
    checkpoint_to_dict,
    load_checkpoint,
    save_checkpoint,
)
from repro.scenario.journal import (
    BisectResult,
    DeltaJournal,
    JournalEntry,
    JournalError,
    bisect_first_divergence,
)
from repro.scenario.session import (
    ScenarioResult,
    Session,
    SessionCheckpoint,
    run_scenario,
    run_scenario_grid,
)
from repro.scenario.sinks import (
    CallbackSink,
    JsonlSink,
    ScenarioObserver,
    SummarySink,
    UnknownSinkError,
    available_sinks,
    create_sink,
    register_sink,
    unregister_sink,
)
from repro.scenario.spec import (
    RUNNER_NAMES,
    WORKLOAD_KINDS,
    BackendSpec,
    GraphSpec,
    ParallelSpec,
    ScenarioSpec,
    ScenarioSpecError,
    WorkloadSpec,
)

__all__ = [
    "ScenarioSpec",
    "GraphSpec",
    "WorkloadSpec",
    "BackendSpec",
    "ParallelSpec",
    "ScenarioSpecError",
    "WORKLOAD_KINDS",
    "RUNNER_NAMES",
    "Session",
    "SessionCheckpoint",
    "ScenarioResult",
    "run_scenario",
    "run_scenario_grid",
    "CheckpointFormatError",
    "checkpoint_to_dict",
    "checkpoint_from_dict",
    "save_checkpoint",
    "load_checkpoint",
    "DeltaJournal",
    "JournalEntry",
    "JournalError",
    "BisectResult",
    "bisect_first_divergence",
    "ScenarioObserver",
    "SummarySink",
    "JsonlSink",
    "CallbackSink",
    "UnknownSinkError",
    "register_sink",
    "unregister_sink",
    "available_sinks",
    "create_sink",
]
