"""Thin client for the ``repro-mis serve`` daemon.

:class:`ServiceClient` wraps one socket connection with the wire protocol of
:mod:`repro.service.protocol` and exposes each service op as a method.  It
connects lazily on the first request, keeps the connection open across
requests (the protocol is a strict in-order pipeline), and works as a
context manager::

    from repro.service import ServiceClient

    with ServiceClient("tcp:127.0.0.1:7411") as client:
        client.create("demo", spec_dict)
        client.apply_batch("demo", steps=10)
        print(client.query("demo", "mis")["mis"])

Error responses become :class:`ServiceClientError` with the wire ``kind``
attached, so callers can branch on ``error.kind == "unknown-session"``
without parsing messages.  Transport failures (the daemon restarted between
requests, a half-closed keep-alive socket) surface the same way with kind
``"connection"`` -- never as a bare :class:`BrokenPipeError` -- and
*idempotent* ops (``ping`` / ``query`` / ``list`` / ``stats``) transparently
reconnect and retry once before giving up.  Mutating ops never retry: a
``create`` or ``apply`` that died mid-flight may or may not have been
applied, and replaying it blindly could double-apply workload units.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional

from repro.service import protocol


class ServiceClientError(RuntimeError):
    """A request the daemon answered with an error response.

    ``kind`` carries the wire error kind; transport-level failures use the
    client-side kind ``"connection"``.
    """

    def __init__(self, message: str, kind: str = "internal") -> None:
        super().__init__(message)
        self.kind = kind


#: Ops safe to retry on a fresh connection: they read daemon/session state
#: without mutating it, so a replay after an ambiguous failure is harmless.
_IDEMPOTENT_OPS = frozenset({"ping", "query", "list", "stats"})


class ServiceClient:
    """One connection to a daemon; one method per service op."""

    def __init__(self, address: protocol.Address, timeout: Optional[float] = 30.0):
        self._address = address
        self._timeout = timeout
        self._socket: Optional[socket.socket] = None
        self._reader = None
        self._writer = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        """Open the connection now (otherwise the first request does)."""
        if self._socket is None:
            self._socket = protocol.connect(self._address, timeout=self._timeout)
            self._reader = self._socket.makefile("rb")
            self._writer = self._socket.makefile("wb")
        return self

    def close(self) -> None:
        """Close the connection (the daemon keeps the sessions, not us)."""
        for stream in (self._reader, self._writer):
            if stream is not None:
                try:
                    stream.close()
                except OSError:  # pragma: no cover - already gone
                    pass
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:  # pragma: no cover - already gone
                pass
        self._socket = self._reader = self._writer = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The request primitive
    # ------------------------------------------------------------------
    def request(self, op: str, **params: Any) -> Any:
        """Send one request; return the ``result`` or raise ServiceClientError.

        A dead connection (the daemon restarted since the last request) is
        reported as kind ``"connection"``; idempotent ops retry once on a
        fresh connection first.
        """
        try:
            return self._request_once(op, params)
        except ServiceClientError as failure:
            if failure.kind != "connection" or op not in _IDEMPOTENT_OPS:
                raise
        # One reconnect attempt: the previous life's keep-alive socket is
        # gone, but the restarted daemon (same address) may be healthy.
        return self._request_once(op, params)

    def _request_once(self, op: str, params: Dict[str, Any]) -> Any:
        try:
            self.connect()
            protocol.write_message(self._writer, protocol.request(op, params))
            response = protocol.read_message(self._reader)
        except (BrokenPipeError, ConnectionError, OSError) as failure:
            self.close()
            raise ServiceClientError(
                f"lost connection to the daemon at {self._address!r} "
                f"(op {op!r}): {failure}",
                kind="connection",
            ) from None
        if response is None:
            self.close()
            raise ServiceClientError(
                f"daemon closed the connection mid-request (op {op!r})",
                kind="connection",
            )
        if response.get("ok"):
            return response.get("result")
        raise ServiceClientError(
            response.get("error", "unknown error"),
            kind=response.get("kind", "internal"),
        )

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        """Daemon liveness, protocol version and shard count."""
        return self.request("ping")

    def create(self, session: str, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Create a session from a ``ScenarioSpec.to_dict()`` form."""
        return self.request("create", session=session, spec=spec)

    def apply(self, session: str, steps: int = 1) -> Dict[str, Any]:
        """Advance the session by ``steps`` workload units."""
        return self.request("apply", session=session, steps=steps)

    def apply_batch(self, session: str, steps: int) -> Dict[str, Any]:
        """Multi-unit ingestion (the service's vectorized hot path)."""
        return self.request("apply_batch", session=session, steps=steps)

    def query(self, session: str, what: str = "status") -> Dict[str, Any]:
        """Read ``status`` / ``mis`` / ``states`` / ``metrics``."""
        return self.request("query", session=session, what=what)

    def checkpoint(self, session: str) -> Dict[str, Any]:
        """Write the session's spool checkpoint without evicting it."""
        return self.request("checkpoint", session=session)

    def evict(self, session: str) -> Dict[str, Any]:
        """Checkpoint to the spool and drop the live session."""
        return self.request("evict", session=session)

    def close_session(self, session: str) -> Dict[str, Any]:
        """Forget the session and delete its spool checkpoint."""
        return self.request("close", session=session)

    def list_sessions(self) -> List[Dict[str, Any]]:
        """All sessions across all shards."""
        return self.request("list")

    def stats(self) -> Dict[str, Any]:
        """Aggregated daemon statistics (plus per-shard detail)."""
        return self.request("stats")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit (same path as SIGTERM)."""
        return self.request("shutdown")
