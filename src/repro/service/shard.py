"""Shard workers: one process, one :class:`~repro.service.host.SessionHost`.

The daemon (:mod:`repro.service.daemon`) owns a pool of shard workers.  Each
worker is a ``multiprocessing.Process`` running :func:`shard_main`: a loop
that reads ``(op, params)`` requests from its end of a
:class:`multiprocessing.Pipe`, hands them to the host, and writes back the
wire-shaped response dict.  The parent talks through a :class:`ShardHandle`,
which serializes access to the pipe with a lock so the daemon's
connection-handling threads can share one worker.

Shutdown is cooperative: the parent sends the ``None`` sentinel, the worker
drains its host (checkpointing every live session to the spool) and exits.
Workers ignore SIGINT/SIGTERM themselves -- the parent catches the signal
and orchestrates the drain, so a ctrl-C or a service-manager stop never
kills a worker mid-checkpoint.
"""

from __future__ import annotations

import multiprocessing
import signal
from typing import Any, Dict, List, Optional, Tuple

from repro.service.host import HostConfig, SessionHost


def shard_main(connection, config: Dict[str, Any], adopt: Optional[List[str]]) -> None:
    """Entry point of one shard worker process.

    ``config`` is the plain-dict form of :class:`HostConfig` (spawn-safe),
    ``adopt`` the list of spooled session ids this shard should re-own from
    a previous daemon life (``None`` adopts everything in the spool).
    """
    # The parent orchestrates shutdown; stray terminal signals must not
    # interrupt a checkpoint write half-way.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main-thread / platform
        pass
    host = SessionHost(HostConfig(**config))
    host.adopt_spool(adopt)
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            # Parent died without a drain request; spool what we can so a
            # restart loses as little as possible, then exit.
            host.handle_safely("drain", {})
            return
        if message is None:
            connection.send(host.handle_safely("drain", {}))
            return
        op, params = message
        connection.send(host.handle_safely(op, params))


class ShardHandle:
    """The parent-side end of one shard worker."""

    def __init__(
        self,
        index: int,
        config: HostConfig,
        adopt: Optional[List[str]],
        context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        import threading

        context = context or multiprocessing.get_context()
        self.index = index
        parent_end, child_end = context.Pipe()
        self._connection = parent_end
        self._lock = threading.Lock()
        self._process = context.Process(
            target=shard_main,
            args=(child_end, config.to_dict(), adopt),
            name=f"repro-mis-shard-{index}",
            daemon=False,  # daemonic workers die abruptly; we want drains
        )
        self._process.start()
        child_end.close()

    def request(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        """Forward one request to the worker and wait for its response.

        The lock makes the pipe a strict request/response channel even when
        many daemon connection threads target the same shard.
        """
        with self._lock:
            if not self._process.is_alive():
                from repro.service import protocol

                return protocol.error(
                    f"shard {self.index} is not running", kind="internal"
                )
            try:
                self._connection.send((op, params))
                return self._connection.recv()
            except (EOFError, OSError) as failure:
                from repro.service import protocol

                return protocol.error(
                    f"shard {self.index} connection lost: {failure}", kind="internal"
                )

    def drain(self) -> Dict[str, Any]:
        """Send the shutdown sentinel; returns the worker's drain report."""
        with self._lock:
            if not self._process.is_alive():
                return {"ok": True, "result": {"drained": [], "sessions": 0}}
            try:
                self._connection.send(None)
                return self._connection.recv()
            except (EOFError, OSError):
                return {"ok": True, "result": {"drained": [], "sessions": 0}}

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the worker to exit (after :meth:`drain`)."""
        self._process.join(timeout)
        if self._process.is_alive():  # pragma: no cover - drain hung
            self._process.terminate()
            self._process.join(timeout)

    @property
    def alive(self) -> bool:
        return self._process.is_alive()


def spawn_shards(
    num_shards: int,
    config: HostConfig,
    assignments: Optional[Dict[int, List[str]]] = None,
) -> Tuple[ShardHandle, ...]:
    """Start ``num_shards`` workers; ``assignments`` maps shard -> adopted ids."""
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    return tuple(
        ShardHandle(
            index,
            config,
            None if assignments is None else assignments.get(index, []),
        )
        for index in range(num_shards)
    )
