"""Wire protocol of the ``repro-mis serve`` daemon (stdlib only).

The service speaks newline-delimited JSON over a stream socket -- a unix
domain socket or localhost TCP.  One request is one JSON object on one
line::

    {"op": "create", "params": {"spec": {...}}}\n

and one response is one JSON object on one line::

    {"ok": true, "result": {...}}\n
    {"ok": false, "error": "no such session 's7'", "kind": "unknown-session"}\n

A connection is a plain request/response pipeline: the client may keep it
open and send any number of requests in order.  Every value on the wire is
plain JSON -- scenario specs travel as their exact
:meth:`~repro.scenario.spec.ScenarioSpec.to_dict` form, node labels as the
trace codec of :func:`repro.workloads.trace.encode_node` -- so any language
with a socket and a JSON parser can talk to the daemon.

Addresses are written ``tcp:HOST:PORT`` or ``unix:PATH`` everywhere (CLI
flags, client constructors, the daemon's "listening on" line);
:func:`parse_address` / :func:`format_address` are the single
parse/print pair.

Error ``kind`` values the daemon uses:

* ``bad-request`` -- malformed JSON, unknown op, missing/invalid parameters;
* ``spec-error`` -- a scenario spec that fails validation (the message
  carries the spec layer's did-you-mean hints);
* ``unknown-session`` -- the session id is neither live nor spooled;
* ``session-exists`` -- ``create`` with an id that is already taken;
* ``internal`` -- anything else (the daemon never crashes a shard on a
  request; the traceback summary comes back in ``error``).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional, Tuple, Union

#: Bump when the request/response shape changes incompatibly; ``ping``
#: reports it so clients can check before issuing real work.
PROTOCOL_VERSION = 1

#: Error kinds (see module docstring).
ERROR_KINDS = (
    "bad-request",
    "spec-error",
    "unknown-session",
    "session-exists",
    "internal",
)

Address = Union[str, Tuple[str, int]]


class WireError(ValueError):
    """A message that cannot be framed or parsed."""


def parse_address(address: Address) -> Tuple[str, Any]:
    """Normalize an address into ``("tcp", (host, port))`` or ``("unix", path)``.

    Accepts the string forms ``tcp:HOST:PORT`` and ``unix:PATH`` (what the
    CLI flags and the daemon's "listening on" line use) plus a plain
    ``(host, port)`` tuple.
    """
    if isinstance(address, tuple):
        host, port = address
        return "tcp", (str(host), int(port))
    if not isinstance(address, str):
        raise WireError(f"unsupported address {address!r}")
    if address.startswith("unix:"):
        path = address[len("unix:") :]
        if not path:
            raise WireError("unix address needs a socket path: unix:PATH")
        return "unix", path
    if address.startswith("tcp:"):
        rest = address[len("tcp:") :]
        host, separator, port = rest.rpartition(":")
        if not separator or not host or not port:
            raise WireError(f"tcp address needs tcp:HOST:PORT, got {address!r}")
        try:
            return "tcp", (host, int(port))
        except ValueError:
            raise WireError(f"tcp port must be an integer, got {port!r}") from None
    raise WireError(
        f"address {address!r} must start with 'tcp:' or 'unix:' "
        "(e.g. tcp:127.0.0.1:7411 or unix:/tmp/repro-mis.sock)"
    )


def format_address(family: str, location: Any) -> str:
    """Inverse of :func:`parse_address` (the daemon's "listening on" form)."""
    if family == "unix":
        return f"unix:{location}"
    host, port = location
    return f"tcp:{host}:{port}"


def connect(address: Address, timeout: Optional[float] = None) -> socket.socket:
    """Open a client socket to a daemon address (either family)."""
    family, location = parse_address(address)
    if family == "unix":
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-posix
            raise WireError("unix sockets are unavailable on this platform; use tcp:")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(timeout)
            sock.connect(location)
        except BaseException:
            sock.close()
            raise
        return sock
    return socket.create_connection(location, timeout=timeout)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_message(document: Dict[str, Any]) -> bytes:
    """One JSON object as one utf-8 line (the only frame on the wire)."""
    try:
        text = json.dumps(document, separators=(",", ":"), sort_keys=True)
    except (TypeError, ValueError) as error:
        raise WireError(f"message is not JSON-serializable: {error}") from None
    if "\n" in text:  # pragma: no cover - json.dumps never emits newlines
        raise WireError("encoded message must be newline-free")
    return text.encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one received line back into a message dict."""
    try:
        document = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"not a JSON message: {error}") from None
    if not isinstance(document, dict):
        raise WireError(f"a message must be a JSON object, got {type(document).__name__}")
    return document


def write_message(stream: Any, document: Dict[str, Any]) -> None:
    """Write one framed message to a file-like binary stream and flush."""
    stream.write(encode_message(document))
    stream.flush()


def read_message(stream: Any) -> Optional[Dict[str, Any]]:
    """Read the next framed message (``None`` on a cleanly closed stream)."""
    line = stream.readline()
    if not line:
        return None
    return decode_message(line)


# ----------------------------------------------------------------------
# Request / response shapes
# ----------------------------------------------------------------------
def request(op: str, params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build a request message."""
    return {"op": op, "params": dict(params or {})}


def ok(result: Any = None) -> Dict[str, Any]:
    """Build a success response."""
    return {"ok": True, "result": result}


def error(message: str, kind: str = "internal") -> Dict[str, Any]:
    """Build an error response (``kind`` from :data:`ERROR_KINDS`)."""
    if kind not in ERROR_KINDS:  # pragma: no cover - defensive
        kind = "internal"
    return {"ok": False, "error": str(message), "kind": kind}
