"""The ``repro-mis serve`` daemon: a sharded multi-session MIS service.

:class:`MISService` ties the pieces together:

* it spawns ``shards`` worker processes (:mod:`repro.service.shard`), each
  owning a :class:`~repro.service.host.SessionHost` over the shared spool
  directory;
* it listens on a unix socket or localhost TCP
  (:mod:`repro.service.protocol` addresses) with one thread per client
  connection, and routes every session-targeted request to the owning
  shard by a stable hash of the session id -- ``crc32(id) % shards`` --
  so a restarted daemon with the same shard count routes identically;
* at startup it scans the spool for checkpoints left by a previous life
  and hands each shard its share to adopt, so sessions drained at the last
  SIGTERM resume exactly, on demand;
* on shutdown it drains every shard: each checkpoints all live sessions to
  the spool before exiting.

Daemon-level ops (answered without touching a shard): ``ping``, ``stats``
(aggregated across shards), ``list`` (ditto) and ``shutdown``.  Everything
else must carry a ``session`` parameter and lands on one shard.

:func:`run_service` is the CLI entry: it installs the SIGTERM/SIGINT ->
graceful-drain handler, prints the ``listening on <address>`` line (tests
and scripts parse it to discover an ephemeral port) and blocks until a
signal or a ``shutdown`` request arrives.
"""

from __future__ import annotations

import os
import signal
import socketserver
import sys
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.service import protocol
from repro.service.host import SESSION_ID_PATTERN, SPOOL_SUFFIX, HostConfig
from repro.service.shard import ShardHandle, spawn_shards

#: Ops the daemon answers itself; everything else routes to a shard.
DAEMON_OPS = ("ping", "stats", "list", "shutdown")

#: Shard ops that fan out to every shard and concatenate/aggregate.
_FANOUT_OPS = ("list", "stats")


def shard_for(session_id: str, num_shards: int) -> int:
    """Stable session -> shard routing (identical across daemon restarts)."""
    return zlib.crc32(session_id.encode("utf-8")) % num_shards


@dataclass
class ServiceConfig:
    """Everything ``repro-mis serve`` needs to start."""

    spool_dir: str
    bind: str = "tcp:127.0.0.1:0"
    shards: int = 2
    #: Per-shard live-session capacity before LRU eviction.
    max_live: int = 64
    #: Preferred rehydration backends (see :class:`HostConfig`).
    engine: Optional[str] = None
    network: Optional[str] = None
    #: Best-effort evaluation-pool budget per shard (0 = serial).  Each
    #: shard hands it to its sessions as ``default_workers``.
    workers_per_shard: int = 0

    def host_config(self) -> HostConfig:
        return HostConfig(
            spool_dir=self.spool_dir,
            max_live=self.max_live,
            engine=self.engine,
            network=self.network,
            workers=self.workers_per_shard,
        )


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a newline-delimited JSON request pipeline."""

    def handle(self) -> None:  # pragma: no cover - exercised via live sockets
        service: "MISService" = self.server.service  # type: ignore[attr-defined]
        while True:
            try:
                message = protocol.read_message(self.rfile)
            except protocol.WireError as failure:
                protocol.write_message(
                    self.wfile, protocol.error(str(failure), kind="bad-request")
                )
                return  # framing is broken; drop the connection
            if message is None:
                return
            response = service.dispatch(message)
            try:
                protocol.write_message(self.wfile, response)
            except (BrokenPipeError, OSError):
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


if hasattr(socketserver, "ThreadingUnixStreamServer"):

    class _UnixServer(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True

else:  # pragma: no cover - non-posix
    _UnixServer = None


class MISService:
    """The daemon object: shard pool + socket server + graceful shutdown."""

    def __init__(self, config: ServiceConfig) -> None:
        if config.shards < 1:
            raise ValueError("shards must be at least 1")
        self._config = config
        spool = Path(config.spool_dir)
        spool.mkdir(parents=True, exist_ok=True)
        # Shards first: they must exist before the first connection, and a
        # socket created afterwards is never inherited by a worker.
        assignments = self._spool_assignments(spool, config.shards)
        self._shards: tuple = spawn_shards(
            config.shards, config.host_config(), assignments
        )
        self._family, location = protocol.parse_address(config.bind)
        self._unix_path: Optional[str] = None
        if self._family == "unix":
            if _UnixServer is None:  # pragma: no cover - non-posix
                raise protocol.WireError(
                    "unix sockets are unavailable on this platform; use tcp:"
                )
            self._unix_path = location
            if os.path.exists(location):
                os.unlink(location)  # a stale socket from a crashed daemon
            self._server = _UnixServer(location, _Handler)
        else:
            self._server = _TCPServer(location, _Handler)
        self._server.service = self  # type: ignore[attr-defined]
        self._serve_thread: Optional[threading.Thread] = None
        self._stopped = False
        self._lock = threading.Lock()
        #: Set by the ``shutdown`` op (and the CLI's signal handler).
        self.shutdown_requested = threading.Event()

    @staticmethod
    def _spool_assignments(spool: Path, shards: int) -> Dict[int, List[str]]:
        """Split spooled session ids from a previous life across the shards."""
        assignments: Dict[int, List[str]] = {index: [] for index in range(shards)}
        for path in sorted(spool.glob(f"*{SPOOL_SUFFIX}")):
            session_id = path.name[: -len(SPOOL_SUFFIX)]
            if SESSION_ID_PATTERN.match(session_id):
                assignments[shard_for(session_id, shards)].append(session_id)
        return assignments

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        """The bound listening address (actual port when binding port 0)."""
        if self._family == "unix":
            return protocol.format_address("unix", self._unix_path)
        host, port = self._server.server_address[:2]
        return protocol.format_address("tcp", (host, port))

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    # ------------------------------------------------------------------
    # Request dispatch (shared by socket handler and in-process callers)
    # ------------------------------------------------------------------
    def dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one request message with one response message."""
        op = message.get("op")
        params = message.get("params", {})
        if not isinstance(op, str):
            return protocol.error(f"request needs a string 'op', got {op!r}", "bad-request")
        if not isinstance(params, dict):
            return protocol.error("'params' must be an object", "bad-request")
        if op == "ping":
            return protocol.ok(
                {
                    "service": "repro-mis",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "shards": self.num_shards,
                    "address": self.address,
                }
            )
        if op == "shutdown":
            self.shutdown_requested.set()
            return protocol.ok({"shutting_down": True})
        if op in _FANOUT_OPS:
            return self._fanout(op, params)
        session_id = params.get("session")
        if not isinstance(session_id, str) or not session_id:
            return protocol.error(
                f"op {op!r} needs a 'session' parameter", "bad-request"
            )
        shard: ShardHandle = self._shards[shard_for(session_id, self.num_shards)]
        return shard.request(op, params)

    def _fanout(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        responses = [shard.request(op, params) for shard in self._shards]
        for response in responses:
            if not response.get("ok"):
                return response
        if op == "list":
            rows: List[Dict[str, Any]] = []
            for response in responses:
                rows.extend(response["result"])
            return protocol.ok(sorted(rows, key=lambda row: row["session"]))
        # stats: sum counters, keep per-shard detail
        totals: Dict[str, Any] = {"shards": self.num_shards}
        per_shard = [response["result"] for response in responses]
        for key in ("sessions", "live", "evicted", "ops", "applied",
                    "evictions", "rehydrations"):
            totals[key] = sum(result[key] for result in per_shard)
        totals["per_shard"] = per_shard
        return protocol.ok(totals)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Serve in a background thread (in-process daemon for tests/examples)."""
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever, name="repro-mis-serve", daemon=True
        )
        self._serve_thread.start()

    def stop(self, drain: bool = True) -> List[str]:
        """Stop listening and shut the shard pool down.

        With ``drain=True`` (the graceful path) every shard checkpoints all
        its live sessions to the spool first; the returned list holds the
        drained session ids.  Safe to call twice.
        """
        with self._lock:
            if self._stopped:
                return []
            self._stopped = True
        self._server.shutdown()
        self._server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
        drained: List[str] = []
        for shard in self._shards:
            if drain:
                report = shard.drain()
                if report.get("ok"):
                    drained.extend(report["result"]["drained"])
            else:
                shard.drain()  # the sentinel is also how workers exit
        for shard in self._shards:
            shard.join(timeout=10.0)
        if self._unix_path and os.path.exists(self._unix_path):
            try:
                os.unlink(self._unix_path)
            except OSError:  # pragma: no cover - racing rm
                pass
        return sorted(drained)

    # Context manager sugar for tests and examples.
    def __enter__(self) -> "MISService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_service(config: ServiceConfig, stream=None) -> int:
    """Run a daemon until SIGTERM/SIGINT or a ``shutdown`` request (CLI path).

    Prints ``listening on <address>`` once the socket is bound -- subprocess
    tests bind ``tcp:127.0.0.1:0`` and parse this line for the real port --
    and a drain summary on the way out.
    """
    stream = stream if stream is not None else sys.stdout
    service = MISService(config)

    def _request_shutdown(signum, frame):  # pragma: no cover - signal path
        service.shutdown_requested.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _request_shutdown)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        service.start()
        print(f"listening on {service.address}", file=stream, flush=True)
        print(
            f"shards={service.num_shards} spool={config.spool_dir} "
            f"max-live={config.max_live}",
            file=stream,
            flush=True,
        )
        service.shutdown_requested.wait()
        drained = service.stop(drain=True)
        print(f"drained {len(drained)} session(s) to spool", file=stream, flush=True)
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
    return 0
