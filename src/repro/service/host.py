"""The per-shard session host: many live sessions, checkpoint-backed eviction.

A :class:`SessionHost` is the process-agnostic core of one shard worker
(:mod:`repro.service.shard`): it owns a table of scenario sessions keyed by
id, dispatches the service ops (``create`` / ``apply`` / ``apply_batch`` /
``query`` / ``checkpoint`` / ``evict`` / ``close`` / ``list`` / ``stats`` /
``drain``) and keeps its memory bounded through the spool directory --

* at most ``max_live`` sessions are held live; past that the least recently
  used one is *evicted*: checkpointed to ``<spool>/<id>.ckpt.json`` through
  :mod:`repro.scenario.checkpoint_io` and dropped from memory;
* any request that targets an evicted session transparently *rehydrates* it:
  the checkpoint is loaded and :meth:`~repro.scenario.session.Session.resume`
  continues it exactly where it stopped -- on the host's preferred backend
  when one is configured (``engine=`` for sequential sessions, ``network=``
  for protocol sessions), since both snapshot flavors are label-keyed and
  cross-backend restore is differential-proven;
* ``drain`` (the SIGTERM path) evicts *every* live session, so a restarted
  host -- pointed at the same spool via :meth:`adopt_spool` -- resumes all of
  them with outputs identical to never-interrupted runs.

The host is deliberately single-threaded: a shard worker serializes its
requests, and concurrency comes from running many shards
(:mod:`repro.service.daemon`).  Everything it returns is plain JSON-ready
data (node labels through the trace codec), so the daemon can forward
results to the wire untouched.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.scenario.checkpoint_io import (
    CheckpointFormatError,
    load_checkpoint,
    save_checkpoint,
)
from repro.scenario.session import Session
from repro.scenario.spec import ScenarioSpec, ScenarioSpecError
from repro.workloads.trace import encode_node

#: Session ids are path fragments (spool file names), so they are restricted
#: to a safe alphabet -- no separators, no dots-only names.
SESSION_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: Spool file suffix; everything else in the spool directory is ignored.
SPOOL_SUFFIX = ".ckpt.json"

#: ``query`` facets the host answers.
QUERY_KINDS = ("status", "mis", "states", "metrics")


class ServiceError(Exception):
    """Base class of request failures; ``kind`` matches the wire protocol."""

    kind = "internal"


class BadRequestError(ServiceError):
    """Malformed or unsupported request parameters."""

    kind = "bad-request"


class UnknownSessionError(ServiceError):
    """The session id is neither live nor spooled on this host."""

    kind = "unknown-session"


class SessionExistsError(ServiceError):
    """``create`` targeting an id that is already live or spooled."""

    kind = "session-exists"


@dataclass
class HostConfig:
    """Tunables of one session host (one shard worker)."""

    spool_dir: str
    #: Live-session capacity before LRU eviction kicks in.
    max_live: int = 64
    #: Preferred engine for rehydrating *sequential* sessions (``None`` keeps
    #: the backend the checkpoint was taken on).
    engine: Optional[str] = None
    #: Preferred network core for rehydrating *protocol* sessions.  Note the
    #: async caveat: crossing cores mid-run is only exact under a
    #: channel-deterministic scheduler (see
    #: :mod:`repro.testing.protocol_differential`).
    network: Optional[str] = None
    #: Best-effort evaluation-pool budget handed to every session this host
    #: creates or rehydrates (``default_workers``); 0 keeps them serial.
    #: Specs with an explicit ``parallel`` block override it per session.
    workers: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain form (what the daemon ships to a worker process)."""
        return {
            "spool_dir": self.spool_dir,
            "max_live": self.max_live,
            "engine": self.engine,
            "network": self.network,
            "workers": self.workers,
        }


@dataclass
class _Entry:
    """One session the host knows about (live, evicted, or both)."""

    session_id: str
    session: Optional[Session] = None
    #: Monotonic op counter value of the last touch (LRU key).
    last_used: int = 0
    #: Whether a spool checkpoint exists on disk for this session.
    spooled: bool = False
    #: Lifetime counters, for ``stats``.
    applied: int = 0
    evictions: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)


class SessionHost:
    """Own, evict and rehydrate many scenario sessions (one shard's core)."""

    def __init__(self, config: HostConfig) -> None:
        self._config = config
        self._spool = Path(config.spool_dir)
        self._spool.mkdir(parents=True, exist_ok=True)
        if config.max_live < 1:
            raise ValueError("max_live must be at least 1")
        self._entries: Dict[str, _Entry] = {}
        self._clock = 0
        self._ops = 0
        self._rehydrations = 0

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    #: op name -> handler method name (the full service surface of a host).
    OPS = {
        "create": "op_create",
        "apply": "op_apply",
        "apply_batch": "op_apply_batch",
        "query": "op_query",
        "checkpoint": "op_checkpoint",
        "evict": "op_evict",
        "close": "op_close",
        "list": "op_list",
        "stats": "op_stats",
        "drain": "op_drain",
    }

    def handle(self, op: str, params: Dict[str, Any]) -> Any:
        """Dispatch one request; raises :class:`ServiceError` subclasses."""
        handler = self.OPS.get(op)
        if handler is None:
            raise BadRequestError(
                f"unknown op {op!r}; known ops: {tuple(self.OPS)}"
            )
        if not isinstance(params, dict):
            raise BadRequestError(f"params must be an object, got {params!r}")
        self._ops += 1
        return getattr(self, handler)(params)

    def handle_safely(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        """Like :meth:`handle`, but returns a wire-shaped response dict.

        A request must never take the shard process down: every failure is
        folded into an error response (scenario-spec problems keep their
        did-you-mean messages under kind ``spec-error``).
        """
        from repro.service import protocol

        try:
            return protocol.ok(self.handle(op, params))
        except ServiceError as failure:
            return protocol.error(str(failure), kind=failure.kind)
        except (ScenarioSpecError, CheckpointFormatError) as failure:
            return protocol.error(str(failure), kind="spec-error")
        except Exception as failure:  # noqa: BLE001 - shard must survive
            return protocol.error(
                f"{type(failure).__name__}: {failure}", kind="internal"
            )

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def op_create(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """``create``: build a session from a ScenarioSpec dict."""
        session_id = self._session_id_param(params)
        record = params.get("spec")
        if not isinstance(record, dict):
            raise BadRequestError("create needs a 'spec' object (ScenarioSpec.to_dict form)")
        if session_id in self._entries or self._spool_path(session_id).exists():
            raise SessionExistsError(f"session {session_id!r} already exists")
        spec = ScenarioSpec.from_dict(record)
        session = Session(spec, default_workers=self._config.workers or None)
        entry = _Entry(session_id=session_id, session=session)
        self._entries[session_id] = entry
        self._touch(entry)
        self._enforce_capacity(keep=session_id)
        return self._status(entry)

    def op_apply(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """``apply``: advance the session by ``steps`` workload units (default 1).

        A *unit* is whatever the spec declares: one change, or -- when the
        spec sets ``batch_size`` -- one vectorized
        :meth:`~repro.core.dynamic_mis.DynamicMIS.apply_batch` chunk.
        """
        steps = params.get("steps", 1)
        if not isinstance(steps, int) or isinstance(steps, bool) or steps < 1:
            raise BadRequestError(f"steps must be a positive integer, got {steps!r}")
        entry = self._live_entry(self._session_id_param(params))
        applied = 0
        for _ in range(steps):
            if entry.session.step() is None:
                break
            applied += 1
        entry.applied += applied
        self._enforce_capacity(keep=entry.session_id)
        status = self._status(entry)
        status["applied"] = applied
        return status

    def op_apply_batch(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """``apply_batch``: ``apply`` with a mandatory multi-unit count.

        The separate op name keeps the wire honest about the unit of work:
        batch-shaped ingestion (the service's hot path) should arrive as one
        request per batch window, not one request per change.
        """
        if "steps" not in params:
            raise BadRequestError("apply_batch needs 'steps' (use 'apply' for one unit)")
        return self.op_apply(params)

    def op_query(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """``query``: read one facet of a session (rehydrating it if needed)."""
        what = params.get("what", "status")
        if what not in QUERY_KINDS:
            raise BadRequestError(
                f"unknown query {what!r}; known queries: {QUERY_KINDS}"
            )
        entry = self._live_entry(self._session_id_param(params))
        result = self._status(entry)
        if what == "mis":
            result["mis"] = sorted(
                (encode_node(node) for node in entry.session.mis()), key=repr
            )
        elif what == "states":
            result["states"] = sorted(
                ([encode_node(node), bool(in_mis)] for node, in_mis in
                 entry.session.states().items()),
                key=repr,
            )
        elif what == "metrics":
            result["metrics"] = entry.session.metrics_summary()
        self._enforce_capacity(keep=entry.session_id)
        return result

    def op_checkpoint(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """``checkpoint``: write the session's spool checkpoint, keep it live."""
        entry = self._live_entry(self._session_id_param(params))
        path = self._write_spool(entry)
        status = self._status(entry)
        status["path"] = str(path)
        return status

    def op_evict(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """``evict``: checkpoint to the spool and drop the live session."""
        session_id = self._session_id_param(params)
        entry = self._entries.get(session_id)
        if entry is None:
            raise UnknownSessionError(f"no such session {session_id!r}")
        if entry.session is not None:
            self._evict(entry)
        return self._status(entry)

    def op_close(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """``close``: forget the session and delete its spool checkpoint."""
        session_id = self._session_id_param(params)
        entry = self._entries.pop(session_id, None)
        spool = self._spool_path(session_id)
        existed = entry is not None or spool.exists()
        if not existed:
            raise UnknownSessionError(f"no such session {session_id!r}")
        status = (
            self._status(entry)
            if entry is not None and entry.session is not None
            else {"session": session_id}
        )
        if entry is not None and entry.session is not None:
            pool = entry.session.parallel_pool
            if pool is not None:
                pool.close()
        try:
            spool.unlink()
        except OSError:
            pass
        status["closed"] = True
        return status

    def op_list(self, params: Dict[str, Any]) -> List[Dict[str, Any]]:
        """``list``: id, liveness and progress of every known session."""
        rows = []
        for session_id in sorted(self._entries):
            entry = self._entries[session_id]
            row = {
                "session": session_id,
                "live": entry.session is not None,
                "spooled": entry.spooled,
            }
            if entry.session is not None:
                row.update(
                    position=entry.session.position, done=entry.session.done
                )
            rows.append(row)
        return rows

    def op_stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """``stats``: host-level counters (the daemon aggregates across shards)."""
        live = sum(1 for entry in self._entries.values() if entry.session is not None)
        return {
            "sessions": len(self._entries),
            "live": live,
            "evicted": len(self._entries) - live,
            "ops": self._ops,
            "applied": sum(entry.applied for entry in self._entries.values()),
            "evictions": sum(entry.evictions for entry in self._entries.values()),
            "rehydrations": self._rehydrations,
            "max_live": self._config.max_live,
        }

    def op_drain(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """``drain``: evict every live session (the graceful-shutdown path)."""
        drained = []
        for entry in list(self._entries.values()):
            if entry.session is not None:
                self._evict(entry)
                drained.append(entry.session_id)
        return {"drained": sorted(drained), "sessions": len(self._entries)}

    # ------------------------------------------------------------------
    # Spool adoption (restart path)
    # ------------------------------------------------------------------
    def adopt_spool(self, session_ids: Optional[List[str]] = None) -> List[str]:
        """Register spooled sessions from a previous daemon life (lazily).

        ``session_ids`` restricts adoption to this host's share (the daemon
        routes ids to shards); ``None`` adopts every spool file.  Sessions
        are *not* loaded here -- the first request rehydrates them -- so a
        restart with thousands of spooled sessions stays O(#files).
        """
        adopted = []
        wanted = None if session_ids is None else set(session_ids)
        for path in sorted(self._spool.glob(f"*{SPOOL_SUFFIX}")):
            session_id = path.name[: -len(SPOOL_SUFFIX)]
            if not SESSION_ID_PATTERN.match(session_id):
                continue
            if wanted is not None and session_id not in wanted:
                continue
            if session_id in self._entries:
                continue
            self._entries[session_id] = _Entry(session_id=session_id, spooled=True)
            adopted.append(session_id)
        return adopted

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _session_id_param(self, params: Dict[str, Any]) -> str:
        session_id = params.get("session")
        if not isinstance(session_id, str) or not SESSION_ID_PATTERN.match(session_id):
            raise BadRequestError(
                f"'session' must match {SESSION_ID_PATTERN.pattern}, got {session_id!r}"
            )
        return session_id

    def _spool_path(self, session_id: str) -> Path:
        return self._spool / f"{session_id}{SPOOL_SUFFIX}"

    def _touch(self, entry: _Entry) -> None:
        self._clock += 1
        entry.last_used = self._clock

    def _live_entry(self, session_id: str) -> _Entry:
        """The entry with a live session, rehydrating from the spool if needed."""
        entry = self._entries.get(session_id)
        if entry is None:
            # A restarted host may not have adopted this id yet.
            if self._spool_path(session_id).exists():
                entry = _Entry(session_id=session_id, spooled=True)
                self._entries[session_id] = entry
            else:
                raise UnknownSessionError(f"no such session {session_id!r}")
        if entry.session is None:
            entry.session = self._rehydrate(session_id)
            self._rehydrations += 1
        self._touch(entry)
        return entry

    def _rehydrate(self, session_id: str) -> Session:
        checkpoint = load_checkpoint(self._spool_path(session_id)).resolve()
        overrides: Dict[str, Any] = {}
        if checkpoint.runner == "sequential" and self._config.engine:
            overrides["engine"] = self._config.engine
        if checkpoint.runner == "protocol" and self._config.network:
            overrides["network"] = self._config.network
        return Session.resume(
            checkpoint, default_workers=self._config.workers or None, **overrides
        )

    def _write_spool(self, entry: _Entry) -> Path:
        path = self._spool_path(entry.session_id)
        save_checkpoint(path, entry.session.checkpoint())
        entry.spooled = True
        return path

    def _evict(self, entry: _Entry) -> None:
        self._write_spool(entry)
        pool = entry.session.parallel_pool
        if pool is not None:
            # Deterministically stop the session's evaluation workers; a
            # long-lived daemon must not wait for GC to reap processes.
            pool.close()
        entry.session = None
        entry.evictions += 1

    def _enforce_capacity(self, keep: str) -> None:
        """Evict LRU live sessions past ``max_live`` (never the one in use)."""
        while True:
            live = [
                entry
                for entry in self._entries.values()
                if entry.session is not None and entry.session_id != keep
            ]
            # keep is excluded from candidates, so capacity counts it too.
            if len(live) + 1 <= self._config.max_live or not live:
                return
            victim = min(live, key=lambda entry: entry.last_used)
            self._evict(victim)

    def _status(self, entry: _Entry) -> Dict[str, Any]:
        status: Dict[str, Any] = {"session": entry.session_id}
        if entry.session is not None:
            status.update(entry.session.status())
            status["live"] = True
        else:
            status["live"] = False
        status["spooled"] = entry.spooled
        return status
