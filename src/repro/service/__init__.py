"""The ``repro-mis serve`` service layer: many sessions, one daemon.

A local daemon that owns many concurrent dynamic-MIS scenario sessions,
sharded across worker processes, with a newline-delimited JSON API over a
unix socket or localhost TCP and checkpoint-backed eviction: idle sessions
spill to on-disk JSON checkpoints and rehydrate transparently, and SIGTERM
drains every shard so a restarted daemon resumes exactly.

Layer map (all stdlib):

* :mod:`repro.service.protocol` -- wire framing, addresses, error kinds;
* :mod:`repro.service.host` -- :class:`SessionHost`, the per-shard core
  (session table, LRU eviction, spool rehydration);
* :mod:`repro.service.shard` -- the worker process around one host;
* :mod:`repro.service.daemon` -- :class:`MISService` (socket server,
  shard routing, graceful shutdown) and :func:`run_service`;
* :mod:`repro.service.client` -- :class:`ServiceClient`.
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.daemon import MISService, ServiceConfig, run_service, shard_for
from repro.service.host import HostConfig, SessionHost
from repro.service.protocol import PROTOCOL_VERSION, parse_address

__all__ = [
    "MISService",
    "ServiceConfig",
    "ServiceClient",
    "ServiceClientError",
    "SessionHost",
    "HostConfig",
    "run_service",
    "shard_for",
    "parse_address",
    "PROTOCOL_VERSION",
]
