"""Message-delay schedulers for the asynchronous simulator.

In the asynchronous model the adversary controls message delays (but not the
algorithm's randomness -- it is oblivious).  A scheduler maps a message
(sender, receiver and a sequence number) to a positive delivery delay.  The
asynchronous simulator additionally enforces FIFO order per directed channel,
the standard assumption for asynchronous message passing.

Three schedulers are provided:

* :class:`FixedDelayScheduler` -- every message takes the same time; this
  makes the asynchronous execution equivalent to the synchronous one and is
  useful for cross-checking.
* :class:`RandomDelayScheduler` -- independent uniform delays in a range,
  modelling a well-behaved but jittery network.
* :class:`AdversarialDelayScheduler` -- a deterministic, oblivious scheduler
  that systematically slows down a fixed fraction of the channels by a large
  factor, creating the long/short message races that asynchronous algorithms
  must tolerate.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, Mapping, Optional, Sequence, Tuple

from repro.registry import Registry, UnknownNameError, did_you_mean

Node = Hashable


class UnknownSchedulerError(UnknownNameError):
    """A scheduler kind that is not registered (with a did-you-mean hint)."""

    def __init__(self, name: str, known: Sequence[str]) -> None:
        known = tuple(known)
        super().__init__(
            "scheduler", name, known, known_word="known"
        )


class DelayScheduler:
    """Interface: return the in-flight delay of one message.

    Schedulers also take part in the checkpoint/resume contract through the
    :meth:`getstate` / :meth:`setstate` pair: a scheduler that consumes a
    private random stream (the ``"random"`` kind) exposes its stream position
    so a :class:`~repro.distributed.state.NetworkSnapshot` can carry it and a
    resumed simulator draws the *same* remaining delays as the uninterrupted
    one.  Stateless (channel-deterministic) schedulers return ``None``.
    """

    def delay(self, sender: Node, receiver: Node, sequence_number: int) -> float:
        """Positive delay for the message with the given channel and sequence number."""
        raise NotImplementedError

    def getstate(self) -> Optional[Tuple]:
        """Opaque resumable state (``None`` for stateless schedulers).

        Whatever this returns rides in
        :attr:`~repro.distributed.state.NetworkSnapshot.scheduler_state` and
        must round-trip through :meth:`setstate` exactly.
        """
        return None

    def setstate(self, state: Optional[Tuple]) -> None:
        """Restore a :meth:`getstate` value.

        ``None`` is always accepted as a no-op -- that is what legacy
        (``repro-checkpoint-v1``) snapshots carry, and a stateless scheduler
        has nothing to restore.  A stateless scheduler handed a non-``None``
        state fails loudly: the snapshot was taken under a different
        scheduler kind and resuming would silently diverge.
        """
        if state is not None:
            raise ValueError(
                f"{type(self).__name__} is stateless but the snapshot carries "
                f"scheduler state {state!r}; was the checkpoint taken under a "
                "different scheduler kind?"
            )


class FixedDelayScheduler(DelayScheduler):
    """Every message takes exactly ``delay_value`` time units."""

    def __init__(self, delay_value: float = 1.0) -> None:
        if delay_value <= 0:
            raise ValueError("delays must be positive")
        self._delay_value = delay_value

    def delay(self, sender: Node, receiver: Node, sequence_number: int) -> float:
        return self._delay_value


class RandomDelayScheduler(DelayScheduler):
    """Independent uniform delays in ``[min_delay, max_delay]``.

    The delays come from one private :class:`random.Random` stream, so the
    scheduler is *stateful*: exact checkpoint/resume needs the stream
    position, which :meth:`getstate` / :meth:`setstate` expose (the
    :class:`~repro.distributed.state.NetworkSnapshot` carries it).  It is
    still not channel-deterministic -- the delay a receiver gets depends on
    the order receivers are enumerated, which differs between the dict and
    id-interned cores -- so cross-*backend* differentials keep requiring the
    ``fixed``/``adversarial`` kinds; same-backend resume is exact.
    """

    #: First element of every :meth:`getstate` value, so a state captured
    #: under one scheduler kind never restores silently into another.
    STATE_TAG = "uniform-rng"

    def __init__(self, seed: int = 0, min_delay: float = 0.1, max_delay: float = 1.0) -> None:
        if min_delay <= 0 or max_delay < min_delay:
            raise ValueError("need 0 < min_delay <= max_delay")
        self._rng = random.Random(seed)
        self._min_delay = min_delay
        self._max_delay = max_delay

    def delay(self, sender: Node, receiver: Node, sequence_number: int) -> float:
        return self._rng.uniform(self._min_delay, self._max_delay)

    def getstate(self) -> Tuple:
        return (self.STATE_TAG, self._rng.getstate())

    def setstate(self, state: Optional[Tuple]) -> None:
        if state is None:
            return  # legacy snapshot without scheduler state: keep the fresh stream
        tag, rng_state = state
        if tag != self.STATE_TAG:
            raise ValueError(
                f"scheduler state tagged {tag!r} cannot restore into a "
                f"{type(self).__name__} (expected {self.STATE_TAG!r})"
            )
        version, internal, gauss = rng_state
        # random.Random.setstate needs the exact nested tuple shape back
        # (JSON round-trips deliver lists).
        self._rng.setstate((int(version), tuple(int(word) for word in internal), gauss))


class AdversarialDelayScheduler(DelayScheduler):
    """Oblivious adversary: a fixed fraction of channels is slowed down a lot.

    The set of slow channels is a deterministic function of the channel
    endpoints and the scheduler seed (so it does not depend on the algorithm's
    randomness), which keeps the adversary oblivious as the model requires.

    Because the delay only depends on the channel -- never on the global
    message sequence -- this scheduler is *channel-deterministic*: two
    simulators replaying the same execution assign identical delays
    regardless of the order in which they enumerate receivers.  The protocol
    differential harness relies on this to compare the dict and fast
    asynchronous backends.  Each channel's parameters are drawn once and
    cached; re-deriving the seeded generator per message dominated the
    event-loop cost on large networks.
    """

    def __init__(
        self, seed: int = 0, slow_fraction: float = 0.3, slow_factor: float = 25.0
    ) -> None:
        if not 0.0 <= slow_fraction <= 1.0:
            raise ValueError("slow_fraction must lie in [0, 1]")
        if slow_factor < 1.0:
            raise ValueError("slow_factor must be at least 1")
        self._seed = seed
        self._slow_fraction = slow_fraction
        self._slow_factor = slow_factor
        self._channel_delays: Dict[Tuple[Node, Node], float] = {}

    #: Cache entries survive node churn (labels never expire), so the cache is
    #: cleared wholesale past this size; values are recomputed identically.
    MAX_CACHED_CHANNELS = 1 << 16

    def delay(self, sender: Node, receiver: Node, sequence_number: int) -> float:
        channel = (sender, receiver)
        cached = self._channel_delays.get(channel)
        if cached is None:
            channel_rng = random.Random((self._seed, repr(sender), repr(receiver)).__repr__())
            cached = 0.5 + channel_rng.random()
            if channel_rng.random() < self._slow_fraction:
                cached *= self._slow_factor
            if len(self._channel_delays) >= self.MAX_CACHED_CHANNELS:
                self._channel_delays.clear()
            self._channel_delays[channel] = cached
        return cached


# ----------------------------------------------------------------------
# Scheduler registry (a thin wrapper over the shared repro.registry helper)
# ----------------------------------------------------------------------
def _check_scheduler_entry(name: str, entry: Any) -> None:
    if (
        not isinstance(entry, tuple)
        or len(entry) != 2
        or not callable(entry[0])
        or not isinstance(entry[1], tuple)
    ):
        raise TypeError(
            f"scheduler {name!r} needs a (class, parameter-names) tuple, got {entry!r}"
        )


_REGISTRY = Registry(
    "scheduler", error=UnknownSchedulerError, check_value=_check_scheduler_entry
)


def register_scheduler(
    kind: str, cls: type, params: Tuple[str, ...] = (), overwrite: bool = False
) -> None:
    """Register a scheduler kind for spec-style ``{"kind": ..., <params>}`` records.

    ``params`` names the keyword arguments the class constructor accepts;
    :func:`create_scheduler` rejects anything else with a did-you-mean hint.
    """
    _REGISTRY.register(kind, (cls, tuple(params)), overwrite=overwrite)


def unregister_scheduler(kind: str) -> None:
    """Remove ``kind`` from the registry (no-op if absent; mainly for tests)."""
    _REGISTRY.unregister(kind)


register_scheduler("fixed", FixedDelayScheduler, ("delay_value",))
register_scheduler("random", RandomDelayScheduler, ("seed", "min_delay", "max_delay"))
register_scheduler(
    "adversarial", AdversarialDelayScheduler, ("seed", "slow_fraction", "slow_factor")
)

#: Spec-nameable scheduler kinds and the keyword parameters each accepts --
#: a read-only *live* view of the registry (late :func:`register_scheduler`
#: calls show up here).  Exact checkpoint/resume does not require channel
#: determinism: the stateful ``"random"`` kind snapshots its stream position
#: (:meth:`DelayScheduler.getstate`), so *same-backend* resume is exact for
#: every kind.
SCHEDULER_KINDS: Mapping[str, Tuple[type, Tuple[str, ...]]] = _REGISTRY.view()

#: Kinds whose delay is a pure function of the channel (not of the global
#: message sequence); ``"adversarial"`` additionally draws distinct delays
#: per channel, which keeps simultaneous deliveries totally ordered.
CHANNEL_DETERMINISTIC_SCHEDULERS = ("fixed", "adversarial")

SCHEDULER_NAMES = tuple(SCHEDULER_KINDS)


def create_scheduler(kind: str, **params: Any) -> DelayScheduler:
    """Build a delay scheduler from a spec-style ``(kind, params)`` description.

    Unknown kinds raise :class:`UnknownSchedulerError` with a did-you-mean
    hint; unknown parameters raise :class:`ValueError` listing the kind's
    accepted names (with their own hint); out-of-range values raise the
    constructors' :class:`ValueError`.
    """
    try:
        cls, allowed = _REGISTRY.get(kind)
    except TypeError:
        # e.g. an unhashable kind from a malformed spec record
        raise UnknownSchedulerError(kind, _REGISTRY.names()) from None
    unknown = [name for name in params if name not in allowed]
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for scheduler {kind!r}; "
            f"accepted: {allowed}{did_you_mean(unknown[0], allowed)}"
        )
    return cls(**params)


def scheduler_from_record(record: Mapping[str, Any]) -> DelayScheduler:
    """Build a scheduler from a spec record ``{"kind": ..., <params>}``."""
    if not isinstance(record, Mapping) or "kind" not in record:
        raise ValueError(
            f"a scheduler record must be a mapping with a 'kind' key, got {record!r}"
        )
    params = {name: value for name, value in record.items() if name != "kind"}
    return create_scheduler(record["kind"], **params)
