"""Asynchronous execution of the direct template protocol (Corollary 6).

The paper's asynchronous model lets an (oblivious) adversary delay messages
arbitrarily; the complexity measure that replaces the round count is the
*longest path of communication*, i.e. the longest chain of messages each of
which was triggered by the previous one.  Corollary 6 states that the direct
implementation of the template needs, in expectation, a single adjustment and
a single unit of this causal depth -- exactly as in the synchronous model.

:class:`AsyncDirectMISNetwork` implements this with a discrete-event
simulation:

* every broadcast is expanded into one event per (current) neighbor, whose
  delivery time is chosen by a pluggable :class:`DelayScheduler` and respects
  per-channel FIFO order,
* a node processes an event the moment it arrives: it updates its knowledge
  of the sender's state, re-evaluates the MIS invariant and, if its output
  must change, flips it and broadcasts -- the new messages inherit the
  triggering message's causal depth plus one,
* the run ends when no events are left; the recorded ``async_causal_depth``
  is the maximum causal depth of any delivered message.

As in the sequential template, topology-change notifications (including the
IDs of new neighbors) are provided by the model; the discovery broadcasts
needed when IDs are *not* known upfront are a synchronous-model refinement
benchmarked separately with :class:`repro.distributed.protocol_mis.BufferedMISNetwork`.
"""

from __future__ import annotations

import copy
import heapq
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.greedy import greedy_mis_states
from repro.core.priorities import PriorityAssigner, RandomPriorityAssigner
from repro.core.state_api import EventSequence
from repro.distributed.metrics import ChangeMetrics, MetricsAggregator
from repro.distributed.node import NodeRuntime, NodeState
from repro.distributed.scheduler import DelayScheduler, RandomDelayScheduler
from repro.distributed.state import (
    NetworkSnapshot,
    check_restorable,
    copy_metric_records,
    runtimes_from_snapshot,
    snapshot_from_runtimes,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    TopologyChange,
    validate_change,
)

Node = Hashable


class AsyncDirectMISNetwork:
    """Event-driven dynamic MIS maintainer for the asynchronous model.

    Parameters
    ----------
    seed:
        Seed of the random IDs.
    initial_graph:
        Optional starting topology (its MIS is installed as the stable start).
    scheduler:
        Message-delay scheduler; defaults to uniform random delays.
    priorities:
        Custom order (for baselines); defaults to random IDs.
    """

    MAX_EVENTS_FACTOR = 50
    #: protocol name in the network-backend registry.
    PROTOCOL = "async-direct"

    def __new__(cls, *args, network: str = "dict", **kwargs):
        """Dispatch through the network-backend registry when ``network != "dict"``.

        ``AsyncDirectMISNetwork(seed=3, network="fast")`` returns the
        id-interned
        :class:`~repro.distributed.fast_network.FastAsyncDirectMISNetwork`.
        """
        if network != "dict":
            if "PROTOCOL" not in cls.__dict__:
                # A subclass inheriting PROTOCOL would silently lose its
                # overrides to the stock registered twin -- fail loudly.
                raise TypeError(
                    f"{cls.__name__} subclasses a registered protocol; register it "
                    f"as its own network backend and select it by name instead of "
                    f"network={network!r}"
                )
            from repro.distributed.network_api import resolve_network

            return resolve_network(network, cls.PROTOCOL)(*args, **kwargs)
        return super().__new__(cls)

    def __init__(
        self,
        seed: int = 0,
        initial_graph: Optional[DynamicGraph] = None,
        scheduler: Optional[DelayScheduler] = None,
        priorities: Optional[PriorityAssigner] = None,
        *,
        network: str = "dict",
    ) -> None:
        # Keyword-only, mirroring __new__: a positional value here would be
        # invisible to the dispatch and silently build the dict core.
        del network  # "dict" by construction; other values dispatched in __new__
        self._priorities = priorities if priorities is not None else RandomPriorityAssigner(seed)
        if scheduler is None:
            # The simulator's own built-in default delay policy; spec-driven
            # runs pass scheduler= through create_network / create_scheduler.
            scheduler = RandomDelayScheduler(seed + 1)  # repro-lint: registry-discipline -- internal default
        self._scheduler = scheduler
        self._graph = DynamicGraph()
        self._runtimes: Dict[Node, NodeRuntime] = {}
        self._aggregator = MetricsAggregator()
        self._sequence = EventSequence()
        if initial_graph is not None:
            self._bootstrap(initial_graph)

    # ------------------------------------------------------------------
    # Bootstrap and read access
    # ------------------------------------------------------------------
    def _bootstrap(self, graph: DynamicGraph) -> None:
        self._graph = graph.copy()
        for node in self._graph.nodes():
            self._priorities.assign(node)
        states = greedy_mis_states(self._graph, self._priorities)
        for node in self._graph.nodes():
            runtime = NodeRuntime(
                node_id=node,
                key=self._priorities.key(node),
                state=NodeState.M if states[node] else NodeState.M_BAR,
                neighbors=set(self._graph.neighbors(node)),
            )
            self._runtimes[node] = runtime
        for node, runtime in self._runtimes.items():
            for other in runtime.neighbors:
                runtime.learn_neighbor(
                    other, self._runtimes[other].key, self._runtimes[other].state
                )

    @property
    def graph(self) -> DynamicGraph:
        """The ground-truth topology (do not mutate directly)."""
        return self._graph

    @property
    def priorities(self) -> PriorityAssigner:
        """The order ``pi``."""
        return self._priorities

    @property
    def metrics(self) -> MetricsAggregator:
        """Per-change metrics accumulated so far."""
        return self._aggregator

    def mis(self) -> Set[Node]:
        """The current maximal independent set."""
        return {node for node, runtime in self._runtimes.items() if runtime.in_mis()}

    def states(self) -> Dict[Node, bool]:
        """Copy of the output map ``node -> in MIS?``."""
        return {node: runtime.in_mis() for node, runtime in self._runtimes.items()}

    def verify(self, reference_engine: str = "template") -> None:
        """Assert that the outputs equal the random-greedy MIS of the graph.

        ``reference_engine="fast"`` computes the expected MIS with the
        array-backed :func:`~repro.core.fast_engine.fast_greedy_mis` instead
        of the dict-based greedy (same output, cheaper at scale).
        """
        from repro.core.fast_engine import reference_mis

        expected = reference_mis(self._graph, self._priorities, reference_engine)
        actual = self.mis()
        if expected != actual:
            raise AssertionError(
                f"async protocol diverged from random greedy: "
                f"expected {sorted(expected, key=repr)[:5]}..., "
                f"got {sorted(actual, key=repr)[:5]}..."
            )

    # ------------------------------------------------------------------
    # Snapshot / restore (the Checkpointable pair)
    # ------------------------------------------------------------------
    def snapshot(self) -> NetworkSnapshot:
        """Capture the simulator's knowledge-level state between changes.

        Additionally records the event-sequence cursor and the scheduler's
        resumable state (the RNG stream position for the ``"random"`` kind,
        ``None`` for the stateless channel-deterministic kinds), so a
        resumed simulator continues scheduling exactly where this one
        stopped -- and draws the exact same remaining delays -- for *every*
        scheduler kind.
        """
        return snapshot_from_runtimes(
            type(self).PROTOCOL,
            self._graph,
            self._priorities,
            self._runtimes,
            self._aggregator.records,
            scheduler_cursor=self._sequence.value,
            scheduler_state=self._scheduler.getstate(),
        )

    def restore(self, snapshot: NetworkSnapshot) -> None:
        """Reset the simulator to a previously captured :class:`NetworkSnapshot`."""
        check_restorable(snapshot, type(self).PROTOCOL)
        self._priorities.restore_keys(
            {node: tuple(key) for node, key in snapshot.priority_keys.items()}
        )
        self._graph, self._runtimes = runtimes_from_snapshot(snapshot)
        self._aggregator = MetricsAggregator(records=list(copy_metric_records(snapshot.metrics)))
        self._sequence = EventSequence(snapshot.scheduler_cursor)
        self._scheduler.setstate(copy.deepcopy(snapshot.scheduler_state))

    # ------------------------------------------------------------------
    # Topology-change API
    # ------------------------------------------------------------------
    def apply(self, change: TopologyChange) -> ChangeMetrics:
        """Apply one topology change and run the event loop to quiescence."""
        validate_change(self._graph, change)
        if isinstance(change, EdgeInsertion):
            metrics = self._apply_edge_insertion(change)
        elif isinstance(change, EdgeDeletion):
            metrics = self._apply_edge_deletion(change)
        elif isinstance(change, (NodeInsertion, NodeUnmuting)):
            metrics = self._apply_node_insertion(change)
        elif isinstance(change, NodeDeletion):
            metrics = self._apply_node_deletion(change)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown change type: {change!r}")
        self._aggregator.add(metrics)
        return metrics

    def apply_sequence(self, changes: Iterable[TopologyChange]) -> List[ChangeMetrics]:
        """Apply a whole change sequence."""
        return [self.apply(change) for change in changes]

    # ------------------------------------------------------------------
    # Change handlers (model-level notifications include IDs)
    # ------------------------------------------------------------------
    def _apply_edge_insertion(self, change: EdgeInsertion) -> ChangeMetrics:
        metrics = ChangeMetrics("edge_insertion")
        before = self.states()
        u, v = change.u, change.v
        self._graph.add_edge(u, v)
        self._connect(u, v)
        later = u if self._priorities.earlier(v, u) else v
        seeds = self._evaluate_and_flip(self._runtimes[later], metrics)
        self._run_events(seeds, metrics)
        self._finalize(metrics, before)
        return metrics

    def _apply_edge_deletion(self, change: EdgeDeletion) -> ChangeMetrics:
        metrics = ChangeMetrics("edge_deletion")
        before = self.states()
        u, v = change.u, change.v
        later = u if self._priorities.earlier(v, u) else v
        self._graph.remove_edge(u, v)
        self._runtimes[u].drop_neighbor(v)
        self._runtimes[v].drop_neighbor(u)
        seeds = self._evaluate_and_flip(self._runtimes[later], metrics)
        self._run_events(seeds, metrics)
        self._finalize(metrics, before)
        return metrics

    def _apply_node_insertion(self, change) -> ChangeMetrics:
        metrics = ChangeMetrics(change.kind)
        before = self.states()
        node = change.node
        self._graph.add_node_with_edges(node, change.neighbors)
        self._priorities.assign(node)
        runtime = NodeRuntime(
            node_id=node,
            key=self._priorities.key(node),
            state=NodeState.M_BAR,
            neighbors=set(change.neighbors),
        )
        self._runtimes[node] = runtime
        for other in change.neighbors:
            self._connect(node, other)
        seeds = self._evaluate_and_flip(runtime, metrics)
        self._run_events(seeds, metrics)
        self._finalize(metrics, before)
        return metrics

    def _apply_node_deletion(self, change: NodeDeletion) -> ChangeMetrics:
        metrics = ChangeMetrics("node_deletion")
        before = self.states()
        node = change.node
        was_in_mis = self._runtimes[node].in_mis()
        former_neighbors = set(self._graph.neighbors(node))
        for other in former_neighbors:
            self._runtimes[other].drop_neighbor(node)
        self._graph.remove_node(node)
        self._runtimes.pop(node)
        self._priorities.forget(node)
        seeds: List[Tuple] = []
        if was_in_mis:
            for other in sorted(former_neighbors, key=self._priorities.key):
                seeds.extend(self._evaluate_and_flip(self._runtimes[other], metrics))
        self._run_events(seeds, metrics)
        self._finalize(metrics, before, removed=node)
        return metrics

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _run_events(self, seed_broadcasts: List[Tuple], metrics: ChangeMetrics) -> None:
        """Run the discrete-event loop until no message is in flight.

        ``seed_broadcasts`` is a list of ``(sender, state, depth)`` broadcast
        requests produced by the change handler.
        """
        queue: List[Tuple[float, int, Node, Node, str, int]] = []
        channel_clock: Dict[Tuple[Node, Node], float] = {}
        max_depth = 0
        processed = 0
        limit = self.MAX_EVENTS_FACTOR * max(1, self._graph.num_nodes()) ** 2 + 100

        def broadcast(sender: Node, state_value: str, depth: int, now: float) -> None:
            nonlocal max_depth
            if not self._graph.has_node(sender):
                return
            metrics.broadcasts += 1
            metrics.bits += 2
            max_depth = max(max_depth, depth)
            for receiver in self._graph.neighbors(sender):
                delay = self._scheduler.delay(sender, receiver, next(self._sequence))
                deliver_at = now + max(delay, 1e-9)
                channel = (sender, receiver)
                deliver_at = max(deliver_at, channel_clock.get(channel, 0.0) + 1e-9)
                channel_clock[channel] = deliver_at
                heapq.heappush(
                    queue, (deliver_at, next(self._sequence), sender, receiver, state_value, depth)
                )

        for sender, state_value, depth in seed_broadcasts:
            broadcast(sender, state_value, depth, now=0.0)

        while queue:
            processed += 1
            if processed > limit:
                raise RuntimeError("asynchronous execution did not quiesce")
            deliver_at, _, sender, receiver, state_value, depth = heapq.heappop(queue)
            runtime = self._runtimes.get(receiver)
            if runtime is None or sender not in runtime.neighbors:
                continue
            runtime.learn_neighbor(sender, None, NodeState(state_value))
            flips = self._evaluate_and_flip(runtime, metrics, depth=depth + 1)
            for flip_sender, flip_state, flip_depth in flips:
                broadcast(flip_sender, flip_state, flip_depth, now=deliver_at)
        metrics.async_causal_depth = max_depth
        metrics.rounds = max_depth

    def _evaluate_and_flip(
        self, runtime: NodeRuntime, metrics: ChangeMetrics, depth: int = 1
    ) -> List[Tuple]:
        """Re-evaluate the MIS invariant at a node; flip and request a broadcast if needed."""
        desired = NodeState.M if runtime.no_earlier_neighbor_in_mis() else NodeState.M_BAR
        if desired is runtime.state:
            return []
        runtime.state = desired
        metrics.state_changes += 1
        return [(runtime.node_id, desired.value, depth)]

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _connect(self, u: Node, v: Node) -> None:
        """Model-level notification of a new adjacency, including IDs and states."""
        runtime_u, runtime_v = self._runtimes[u], self._runtimes[v]
        runtime_u.add_neighbor(v)
        runtime_v.add_neighbor(u)
        runtime_u.learn_neighbor(v, runtime_v.key, runtime_v.state)
        runtime_v.learn_neighbor(u, runtime_u.key, runtime_u.state)

    def _finalize(
        self, metrics: ChangeMetrics, before: Dict[Node, bool], removed: Optional[Node] = None
    ) -> None:
        after = self.states()
        adjusted = {
            node for node, now in after.items() if before.get(node, False) != now
        }
        if removed is not None:
            adjusted.discard(removed)
        metrics.adjusted_nodes = adjusted
        metrics.adjustments = len(adjusted)
