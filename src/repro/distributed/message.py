"""Broadcast messages and their bit accounting.

The paper's model restricts every message to ``O(log n)`` bits and counts a
*broadcast* as one node sending one message to all of its neighbors
(footnote 2: "broadcast" means the node cannot send different messages to
different neighbors in the same round -- it is not a wireless primitive).

Two message kinds are enough for all protocols in this library:

* ``STATE`` -- the sender announces its new protocol state (M, M-bar, C or R).
  This needs 2 bits of payload.
* ``ID_AND_STATE`` -- the sender announces its random ID ``l_v`` together with
  its current state.  A full-precision ID needs ``O(log n)`` bits (with the
  standard ``N = n^{O(1)}`` upper bound); the paper notes that the technique
  of Metivier et al. reduces the *expected* number of bits to O(1) per
  broadcast because only the relative order between neighbors matters.  Both
  accounting models are implemented: :func:`id_message_bits` returns the
  ``O(log n)`` cost and :func:`expected_comparison_bits` the constant-expected
  cost used by experiment E11.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

Node = Hashable


class MessageKind(enum.Enum):
    """The two payload kinds used by the protocols."""

    STATE = "state"
    ID_AND_STATE = "id_and_state"


@dataclass(frozen=True)
class Message:
    """A single broadcast message.

    Attributes
    ----------
    sender:
        The broadcasting node.
    kind:
        Payload kind.
    state:
        The announced protocol state (one of the ``NodeState`` values, stored
        as its string value to keep this module free of protocol imports).
    random_id:
        The announced random ID, present only for ``ID_AND_STATE`` messages.
        (The simulators store the full priority key here; only its first
        component is the paper's ``l_v``, the rest are tie-breaks.)
    requests_introduction:
        For ``ID_AND_STATE`` messages: whether receivers that do not yet know
        the sender should introduce themselves back (True for a brand new
        node or a new edge endpoint, False for an unmuting node, which
        already overheard its neighbors and says so with one extra bit).
    round_sent:
        Round in which the broadcast was issued (filled by the simulator;
        informational only).
    """

    sender: Node
    kind: MessageKind
    state: str
    random_id: Optional[Tuple] = None
    requests_introduction: bool = True
    round_sent: int = 0

    def bits(self, network_size_bound: int) -> int:
        """Size of this message in bits under the O(log n) accounting model."""
        if self.kind is MessageKind.STATE:
            return state_message_bits()
        return id_message_bits(network_size_bound)


def state_message_bits() -> int:
    """Bits needed to announce one of the four protocol states."""
    return 2


def id_message_bits(network_size_bound: int) -> int:
    """Bits needed to announce a random ID with the standard O(log N) encoding.

    The paper assumes knowledge of an upper bound ``N >= n`` with
    ``N = n^{O(1)}``; we use ``N = max(n, 2)^2`` so IDs are distinguishable
    with high probability, giving ``2 * ceil(log2 n) + 2`` bits including the
    piggybacked state.
    """
    bound = max(2, network_size_bound)
    return 2 * max(1, math.ceil(math.log2(bound))) + state_message_bits()


def expected_comparison_bits() -> float:
    """Expected bits per broadcast under the Metivier-style comparison encoding.

    Only the *relative order* between a node and each neighbor matters, so the
    node can reveal its ID one bit at a time; the expected number of bits until
    the order with a uniformly random neighbor ID is determined is 2 (a
    geometric series), plus the 2 state bits.
    """
    return 2.0 + state_message_bits()
