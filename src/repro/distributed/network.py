"""Synchronous broadcast simulator and shared topology-change controller.

:class:`SynchronousMISNetwork` implements everything that is common to the
two dynamic MIS protocols:

* the ground-truth topology and the random order ``pi`` (realized by random
  IDs handed out on node arrival),
* one :class:`~repro.distributed.node.NodeRuntime` per node holding the
  node's *local* knowledge,
* the synchronous round loop -- a message broadcast in round ``t`` is
  received by all current neighbors of the sender and processed in round
  ``t + 1``; a round with no message in flight, no state change and no node
  in a transient state is stable,
* the topology-change controller implementing the model-level notifications
  and discovery phases of Sections 2, 4.1 and 4.2 (who gets told what when an
  edge/node appears or disappears, and who must broadcast its random ID), and
* the per-change metric collection (adjustments, rounds, broadcasts, bits).

The two concrete protocols plug into the three hooks
:meth:`SynchronousMISNetwork._node_step` (the per-round state machine),
:meth:`SynchronousMISNetwork._seed_violation` (what ``v*`` does when it
detects that the MIS invariant broke) and
:meth:`SynchronousMISNetwork._seed_retirement` (what a gracefully deleted MIS
node does).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.greedy import greedy_mis_states
from repro.core.priorities import PriorityAssigner, RandomPriorityAssigner
from repro.distributed.message import Message, MessageKind, MessageKind as _Kind
from repro.distributed.metrics import ChangeMetrics, MetricsAggregator
from repro.distributed.node import NodeRuntime, NodeState
from repro.distributed.state import (
    NetworkSnapshot,
    check_restorable,
    copy_metric_records,
    runtimes_from_snapshot,
    snapshot_from_runtimes,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    TopologyChange,
    validate_change,
)

Node = Hashable


class ProtocolError(RuntimeError):
    """Raised when a protocol run does not stabilize within the safety cap."""


class RoundRecord:
    """Observability record of one synchronous round of one change's repair.

    Produced only when round logging is enabled on the network
    (:meth:`SynchronousMISNetwork.enable_round_logging`); used for debugging
    protocol behaviour and by tests that assert round-by-round properties.
    """

    __slots__ = ("round_number", "messages_delivered", "broadcasts", "state_changes")

    def __init__(self, round_number: int) -> None:
        self.round_number = round_number
        self.messages_delivered = 0
        self.broadcasts: List[Tuple[Node, str, str]] = []
        self.state_changes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoundRecord(round={self.round_number}, delivered={self.messages_delivered}, "
            f"broadcasts={len(self.broadcasts)}, state_changes={self.state_changes})"
        )


class SynchronousMISNetwork:
    """Base class: simulator + controller for dynamic distributed MIS protocols.

    Parameters
    ----------
    seed:
        Seed of the random IDs (ignored when ``priorities`` is given).
    initial_graph:
        Optional starting topology.  As in the paper, the system starts from a
        stable configuration: the initial MIS is installed directly (it could
        equivalently be computed by any static algorithm) and every node knows
        its neighbors' IDs and states.
    priorities:
        Custom priority assigner (e.g. the deterministic one for baselines).
    """

    #: multiplicative safety cap on the number of rounds per change.
    ROUND_CAP_FACTOR = 6
    #: additive safety cap on the number of rounds per change.
    ROUND_CAP_SLACK = 30
    #: protocol name in the network-backend registry (set by concrete protocols).
    PROTOCOL: Optional[str] = None

    def __new__(cls, *args, network: str = "dict", **kwargs):
        """Dispatch through the network-backend registry when ``network != "dict"``.

        ``BufferedMISNetwork(seed=3, network="fast")`` returns the
        id-interned :class:`~repro.distributed.fast_network.FastBufferedMISNetwork`
        (and likewise for the direct protocol), so existing call sites select
        a state core with zero edits.  See
        :mod:`repro.distributed.network_api`.
        """
        if network != "dict":
            if cls.PROTOCOL is None:
                raise TypeError(
                    f"{cls.__name__} is not a concrete protocol; select a backend "
                    f"via repro.distributed.network_api.create_network instead"
                )
            if "PROTOCOL" not in cls.__dict__:
                # A subclass inheriting PROTOCOL would silently lose its
                # overrides to the stock registered twin -- fail loudly.
                raise TypeError(
                    f"{cls.__name__} subclasses a registered protocol; register it "
                    f"as its own network backend and select it by name instead of "
                    f"network={network!r}"
                )
            from repro.distributed.network_api import resolve_network

            return resolve_network(network, cls.PROTOCOL)(*args, **kwargs)
        return super().__new__(cls)

    def __init__(
        self,
        seed: int = 0,
        initial_graph: Optional[DynamicGraph] = None,
        priorities: Optional[PriorityAssigner] = None,
        *,
        network: str = "dict",
    ) -> None:
        # Keyword-only, mirroring __new__: a positional value here would be
        # invisible to the dispatch and silently build the dict core.
        del network  # "dict" by construction; other values dispatched in __new__
        self._priorities = priorities if priorities is not None else RandomPriorityAssigner(seed)
        self._graph = DynamicGraph()
        self._runtimes: Dict[Node, NodeRuntime] = {}
        self._aggregator = MetricsAggregator()
        self._introduced: Set[Node] = set()  # repro-lint: transient -- bootstrap bookkeeping; restore re-interns
        self._round_logging = False  # repro-lint: transient -- observability toggle, not protocol state
        self._last_round_log: List[RoundRecord] = []  # repro-lint: transient -- observability scratch
        if initial_graph is not None:
            self._bootstrap(initial_graph)

    # ------------------------------------------------------------------
    # Bootstrap and read access
    # ------------------------------------------------------------------
    def _bootstrap(self, graph: DynamicGraph) -> None:
        self._graph = graph.copy()
        for node in self._graph.nodes():
            self._priorities.assign(node)
        states = greedy_mis_states(self._graph, self._priorities)
        for node in self._graph.nodes():
            runtime = NodeRuntime(
                node_id=node,
                key=self._priorities.key(node),
                state=NodeState.M if states[node] else NodeState.M_BAR,
                neighbors=set(self._graph.neighbors(node)),
            )
            self._runtimes[node] = runtime
        for node, runtime in self._runtimes.items():
            for other in runtime.neighbors:
                runtime.learn_neighbor(
                    other, self._runtimes[other].key, self._runtimes[other].state
                )

    @property
    def graph(self) -> DynamicGraph:
        """The ground-truth topology (do not mutate directly)."""
        return self._graph

    @property
    def priorities(self) -> PriorityAssigner:
        """The order ``pi``."""
        return self._priorities

    @property
    def metrics(self) -> MetricsAggregator:
        """Per-change metrics accumulated so far."""
        return self._aggregator

    def mis(self) -> Set[Node]:
        """The current maximal independent set (outputs of all nodes)."""
        return {node for node, runtime in self._runtimes.items() if runtime.in_mis()}

    def states(self) -> Dict[Node, bool]:
        """Copy of the output map ``node -> in MIS?``."""
        return {node: runtime.in_mis() for node, runtime in self._runtimes.items()}

    def node_runtime(self, node: Node) -> NodeRuntime:
        """The runtime record of ``node`` (primarily for tests)."""
        return self._runtimes[node]

    def enable_round_logging(self, enabled: bool = True) -> None:
        """Turn per-round observability records on or off (off by default)."""
        self._round_logging = enabled
        if not enabled:
            self._last_round_log = []

    def last_change_trace(self) -> List[RoundRecord]:
        """Round-by-round records of the most recent change (requires logging)."""
        return list(self._last_round_log)

    def verify(self, reference_engine: str = "template") -> None:
        """Assert that the outputs equal the random-greedy MIS of the graph.

        This is a stronger check than "the output is some MIS": it verifies
        that the protocol faithfully simulates the sequential random greedy
        algorithm under the same random IDs, which is what gives history
        independence.

        Parameters
        ----------
        reference_engine:
            Which reference computes the expected MIS: ``"template"`` uses
            the dict-based :func:`~repro.core.greedy.greedy_mis`, ``"fast"``
            the array-backed :func:`~repro.core.fast_engine.fast_greedy_mis`
            (same output, much cheaper on large networks).
        """
        expected = self._reference_mis(reference_engine)
        actual = self.mis()
        if expected != actual:
            missing = expected - actual
            extra = actual - expected
            raise AssertionError(
                f"protocol output diverged from random greedy: "
                f"missing={sorted(missing, key=repr)[:5]}, "
                f"extra={sorted(extra, key=repr)[:5]}"
            )
        transient = [
            node for node, runtime in self._runtimes.items() if not runtime.state.is_output
        ]
        if transient:
            raise AssertionError(f"nodes left in transient states: {transient[:5]}")

    def _reference_mis(self, reference_engine: str) -> Set[Node]:
        """Expected MIS from the selected sequential reference backend."""
        from repro.core.fast_engine import reference_mis

        return reference_mis(self._graph, self._priorities, reference_engine)

    # ------------------------------------------------------------------
    # Snapshot / restore (the Checkpointable pair)
    # ------------------------------------------------------------------
    def snapshot(self) -> NetworkSnapshot:
        """Capture the simulator's knowledge-level state between changes.

        The snapshot is label-keyed (see
        :class:`~repro.distributed.state.NetworkSnapshot`), so it restores
        into *any* registered network backend running the same protocol --
        including the id-interned fast core.
        """
        return snapshot_from_runtimes(
            type(self).PROTOCOL,
            self._graph,
            self._priorities,
            self._runtimes,
            self._aggregator.records,
        )

    def restore(self, snapshot: NetworkSnapshot) -> None:
        """Reset the simulator to a previously captured :class:`NetworkSnapshot`.

        After ``restore(snap)`` the topology, node states, priority keys,
        per-edge knowledge and accumulated metrics equal those at
        ``snapshot()`` time; applying the identical remaining workload then
        reproduces an uninterrupted run change for change.
        """
        check_restorable(snapshot, type(self).PROTOCOL)
        self._priorities.restore_keys(
            {node: tuple(key) for node, key in snapshot.priority_keys.items()}
        )
        self._graph, self._runtimes = runtimes_from_snapshot(snapshot)
        self._aggregator = MetricsAggregator(records=list(copy_metric_records(snapshot.metrics)))
        self._introduced = set()
        self._last_round_log = []

    # ------------------------------------------------------------------
    # Topology-change API
    # ------------------------------------------------------------------
    def apply(self, change: TopologyChange) -> ChangeMetrics:
        """Apply one topology change, run the protocol to stability, return metrics."""
        validate_change(self._graph, change)
        self._introduced = set()
        if isinstance(change, EdgeInsertion):
            metrics = self._apply_edge_insertion(change)
        elif isinstance(change, EdgeDeletion):
            metrics = self._apply_edge_deletion(change)
        elif isinstance(change, NodeInsertion):
            metrics = self._apply_node_insertion(change)
        elif isinstance(change, NodeUnmuting):
            metrics = self._apply_node_unmuting(change)
        elif isinstance(change, NodeDeletion):
            metrics = self._apply_node_deletion(change)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown change type: {change!r}")
        self._aggregator.add(metrics)
        return metrics

    def apply_sequence(self, changes: Iterable[TopologyChange]) -> List[ChangeMetrics]:
        """Apply a whole change sequence, returning one metrics record per change."""
        return [self.apply(change) for change in changes]

    # ------------------------------------------------------------------
    # Change handlers
    # ------------------------------------------------------------------
    def _apply_edge_insertion(self, change: EdgeInsertion) -> ChangeMetrics:
        metrics = ChangeMetrics("edge_insertion")
        before = self.states()
        u, v = change.u, change.v
        self._graph.add_edge(u, v)
        self._runtimes[u].add_neighbor(v)
        self._runtimes[v].add_neighbor(u)
        # Section 4.1: in the first round both endpoints broadcast their random
        # ID and state so that each learns the other's order and output.
        seeds = [
            self._id_broadcast(u, round_sent=1),
            self._id_broadcast(v, round_sent=1),
        ]
        self._introduced.update((u, v))
        self._run_until_stable(metrics, seeds, dirty=set())
        self._finalize(metrics, before)
        return metrics

    def _apply_edge_deletion(self, change: EdgeDeletion) -> ChangeMetrics:
        metrics = ChangeMetrics("edge_deletion")
        before = self.states()
        u, v = change.u, change.v
        self._graph.remove_edge(u, v)
        self._runtimes[u].drop_neighbor(v)
        self._runtimes[v].drop_neighbor(u)
        # Both endpoints are notified by the model; only the later one can be
        # in violation, and it can tell purely from local knowledge.
        later = u if self._priorities.earlier(v, u) else v
        seeds: List[Message] = []
        seeds.extend(self._maybe_seed_violation(self._runtimes[later], metrics))
        self._run_until_stable(metrics, seeds, dirty=set())
        self._finalize(metrics, before)
        return metrics

    def _apply_node_insertion(self, change: NodeInsertion) -> ChangeMetrics:
        metrics = ChangeMetrics("node_insertion")
        before = self.states()
        node = change.node
        self._graph.add_node_with_edges(node, change.neighbors)
        self._priorities.assign(node)
        runtime = NodeRuntime(
            node_id=node,
            key=self._priorities.key(node),
            state=NodeState.M_BAR,
            neighbors=set(change.neighbors),
        )
        self._runtimes[node] = runtime
        for other in change.neighbors:
            self._runtimes[other].add_neighbor(node)
        # Section 4.1: the new node broadcasts its ID and a provisional
        # non-MIS state; neighbors introduce themselves back (O(d(v*))
        # broadcasts), after which the new node can check the invariant.  An
        # isolated node has nobody to hear from and checks immediately.
        seeds = [self._id_broadcast(node, round_sent=1, requests_introduction=True)]
        self._introduced.add(node)
        if not change.neighbors:
            seeds.extend(self._maybe_seed_violation(runtime, metrics))
        self._run_until_stable(metrics, seeds, dirty=set())
        self._finalize(metrics, before)
        return metrics

    def _apply_node_unmuting(self, change: NodeUnmuting) -> ChangeMetrics:
        metrics = ChangeMetrics("node_unmuting")
        before = self.states()
        node = change.node
        self._graph.add_node_with_edges(node, change.neighbors)
        self._priorities.assign(node)
        runtime = NodeRuntime(
            node_id=node,
            key=self._priorities.key(node),
            state=NodeState.M_BAR,
            neighbors=set(change.neighbors),
        )
        self._runtimes[node] = runtime
        # The unmuted node overheard its neighbors all along: it already knows
        # their IDs and current states without any extra broadcast.
        for other in change.neighbors:
            self._runtimes[other].add_neighbor(node)
            runtime.learn_neighbor(other, self._runtimes[other].key, self._runtimes[other].state)
        # It announces itself once; nobody needs to introduce themselves back.
        seeds = [self._id_broadcast(node, round_sent=1, requests_introduction=False)]
        self._introduced.add(node)
        seeds.extend(self._maybe_seed_violation(runtime, metrics))
        self._run_until_stable(metrics, seeds, dirty=set())
        self._finalize(metrics, before)
        return metrics

    def _apply_node_deletion(self, change: NodeDeletion) -> ChangeMetrics:
        metrics = ChangeMetrics("node_deletion")
        before = self.states()
        node = change.node
        runtime = self._runtimes[node]
        was_in_mis = runtime.in_mis()
        if change.graceful and was_in_mis:
            # Graceful deletion: the node keeps relaying until the system is
            # stable.  It seeds the repair itself, with its final output
            # forced to non-MIS, and only then retires.
            runtime.retiring = True
            seeds = self._seed_retirement(runtime, metrics)
            self._run_until_stable(metrics, seeds, dirty=set())
            self._detach_node(node)
        elif change.graceful:
            # A non-MIS node retires silently: no neighbor's invariant changes.
            self._detach_node(node)
            self._run_until_stable(metrics, [], dirty=set())
        else:
            # Abrupt deletion: neighbors merely observe that the node is gone.
            former_neighbors = set(self._graph.neighbors(node))
            self._detach_node(node)
            seeds: List[Message] = []
            if was_in_mis:
                # Section 4.2: every former neighbor whose invariant broke
                # (it was non-MIS and its only earlier MIS neighbor was the
                # deleted node) switches to C in the first round.
                for other in sorted(former_neighbors, key=self._priorities.key):
                    seeds.extend(self._maybe_seed_violation(self._runtimes[other], metrics))
            self._run_until_stable(metrics, seeds, dirty=set())
        self._finalize(metrics, before, removed=node)
        return metrics

    # ------------------------------------------------------------------
    # Protocol hooks (implemented by subclasses)
    # ------------------------------------------------------------------
    def _node_step(
        self, runtime: NodeRuntime, inbox: List[Message], round_no: int
    ) -> Tuple[List[Message], bool]:
        """Run one round of the protocol state machine at one node.

        Returns the broadcasts the node issues this round and whether its
        protocol state changed.
        """
        raise NotImplementedError

    def _seed_violation(self, runtime: NodeRuntime, metrics: ChangeMetrics) -> List[Message]:
        """Reaction of a node that locally detects an MIS-invariant violation."""
        raise NotImplementedError

    def _seed_retirement(self, runtime: NodeRuntime, metrics: ChangeMetrics) -> List[Message]:
        """Reaction of a gracefully deleted MIS node (it must hand off its role)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Simulator core
    # ------------------------------------------------------------------
    def _run_until_stable(
        self, metrics: ChangeMetrics, seed_messages: List[Message], dirty: Set[Node]
    ) -> None:
        """Run synchronous rounds until the system is stable again.

        ``seed_messages`` are the broadcasts issued in round 1 by the change
        handler (discovery and violation seeds); ``dirty`` is unused by the
        buffered protocol and lets the direct protocol force re-evaluations
        without a message (kept for symmetry; currently seeds cover it).
        """
        del dirty
        self._last_round_log = []
        pending = list(seed_messages)
        if pending:
            self._account_broadcasts(metrics, pending)
            metrics.rounds = max(metrics.rounds, 1)
            if self._round_logging:
                seed_record = RoundRecord(1)
                seed_record.broadcasts = [
                    (message.sender, message.kind.value, message.state) for message in pending
                ]
                self._last_round_log.append(seed_record)
        last_active = metrics.rounds
        round_no = 1
        cap = self.ROUND_CAP_FACTOR * max(1, self._graph.num_nodes()) + self.ROUND_CAP_SLACK
        while True:
            round_no += 1
            if round_no > cap:
                raise ProtocolError(
                    f"protocol did not stabilize within {cap} rounds "
                    f"(change kind {metrics.change_kind})"
                )
            inboxes = self._deliver(pending)
            pending = []
            activity = False
            record = RoundRecord(round_no) if self._round_logging else None
            if record is not None:
                record.messages_delivered = sum(len(inbox) for inbox in inboxes.values())
            for node in sorted(self._runtimes, key=self._priorities.key):
                runtime = self._runtimes[node]
                inbox = inboxes.get(node, [])
                outgoing, changed = self._node_step(runtime, inbox, round_no)
                if outgoing:
                    for message in outgoing:
                        pending.append(message)
                        if record is not None:
                            record.broadcasts.append(
                                (message.sender, message.kind.value, message.state)
                            )
                    activity = True
                if changed:
                    metrics.state_changes += 1
                    if record is not None:
                        record.state_changes += 1
                    activity = True
            if pending:
                self._account_broadcasts(metrics, pending)
            if activity:
                last_active = round_no
            if record is not None and (activity or record.messages_delivered):
                self._last_round_log.append(record)
            transient = any(
                not runtime.state.is_output for runtime in self._runtimes.values()
            )
            if not pending and not activity and not transient:
                break
        metrics.rounds = max(metrics.rounds, last_active)

    def _deliver(self, messages: List[Message]) -> Dict[Node, List[Message]]:
        """Deliver each broadcast to all *current* neighbors of its sender."""
        inboxes: Dict[Node, List[Message]] = {}
        for message in messages:
            sender = message.sender
            if not self._graph.has_node(sender):
                continue
            for receiver in self._graph.neighbors(sender):
                inboxes.setdefault(receiver, []).append(message)
        return inboxes

    def _account_broadcasts(self, metrics: ChangeMetrics, messages: List[Message]) -> None:
        bound = max(2, self._graph.num_nodes())
        for message in messages:
            metrics.broadcasts += 1
            metrics.bits += message.bits(bound)

    # ------------------------------------------------------------------
    # Shared helpers for change handlers and protocols
    # ------------------------------------------------------------------
    def _id_broadcast(
        self, node: Node, round_sent: int, requests_introduction: bool = True
    ) -> Message:
        runtime = self._runtimes[node]
        return Message(
            sender=node,
            kind=MessageKind.ID_AND_STATE,
            state=runtime.state.value,
            random_id=runtime.key,
            requests_introduction=requests_introduction,
            round_sent=round_sent,
        )

    def _state_broadcast(self, node: Node, round_sent: int) -> Message:
        runtime = self._runtimes[node]
        return Message(
            sender=node,
            kind=MessageKind.STATE,
            state=runtime.state.value,
            round_sent=round_sent,
        )

    def _maybe_seed_violation(self, runtime: NodeRuntime, metrics: ChangeMetrics) -> List[Message]:
        """Check the MIS invariant from local knowledge; seed the repair if broken."""
        if not runtime.state.is_output:
            return []
        should_be_in_mis = runtime.no_earlier_neighbor_in_mis()
        if should_be_in_mis == runtime.in_mis():
            return []
        return self._seed_violation(runtime, metrics)

    def _detach_node(self, node: Node) -> None:
        """Remove a node from the topology, the runtimes and its neighbors' views."""
        for other in self._graph.neighbors(node):
            self._runtimes[other].drop_neighbor(node)
        self._graph.remove_node(node)
        self._runtimes.pop(node, None)
        self._priorities.forget(node)

    def _finalize(
        self, metrics: ChangeMetrics, before: Dict[Node, bool], removed: Optional[Node] = None
    ) -> None:
        """Compute the adjustment complexity of the change just processed."""
        after = self.states()
        adjusted: Set[Node] = set()
        for node, now_in_mis in after.items():
            previously = before.get(node, False)
            if previously != now_in_mis:
                adjusted.add(node)
        if removed is not None:
            adjusted.discard(removed)
        metrics.adjusted_nodes = adjusted
        metrics.adjustments = len(adjusted)

    def _handle_inbox(
        self, runtime: NodeRuntime, inbox: List[Message], round_no: int
    ) -> Tuple[List[Message], bool]:
        """Shared inbox processing: update knowledge, handle introductions.

        Returns (introduction broadcasts to send, whether a previously unknown
        neighbor key was learned).
        """
        outgoing: List[Message] = []
        learned_new_key = False
        for message in inbox:
            sender = message.sender
            if sender not in runtime.neighbors:
                # Stale message from a node that is no longer a neighbor.
                continue
            key_was_known = sender in runtime.neighbor_keys
            runtime.learn_neighbor(
                sender,
                message.random_id if message.kind is _Kind.ID_AND_STATE else None,
                NodeState(message.state),
            )
            if message.kind is _Kind.ID_AND_STATE and not key_was_known:
                learned_new_key = True
                if message.requests_introduction and runtime.node_id not in self._introduced:
                    outgoing.append(self._id_broadcast(runtime.node_id, round_sent=round_no))
                    self._introduced.add(runtime.node_id)
        return outgoing, learned_new_key
