"""Algorithm 2: the constant-broadcast dynamic MIS protocol (Section 4).

Every node is in one of four states -- ``M`` (MIS), ``M_BAR`` (non-MIS),
``C`` (may need to change) and ``R`` (ready to change) -- and follows the
paper's four rules:

1. ``v in M``: if some earlier neighbor changes to ``C``, change to ``C``.
2. ``v in M_BAR``: if some earlier neighbor changes to ``C`` and all other
   earlier neighbors are not in ``M``, change to ``C``.
3. ``v in C``: if no later neighbor is in ``C`` and ``v`` entered ``C`` at
   least two rounds ago, change to ``R``.
4. ``v in R``: if all earlier neighbors are in ``M`` or ``M_BAR``, change to
   ``M`` when none of them is in ``M`` and to ``M_BAR`` otherwise.

Every state change is broadcast.  The effect (Lemmas 8-13) is that each
influenced node changes state exactly three times (``M/M_BAR -> C -> R ->
M/M_BAR``) instead of potentially ``Theta(|S|)`` times in the direct
implementation, which yields O(1) broadcasts in expectation for all change
types except abrupt node deletions (O(min(log n, d(v*)))) and node insertions
(O(d(v*)) for the ID discovery).

The change detection and discovery phases (Sections 4.1 and 4.2) are
implemented by the shared controller in
:class:`repro.distributed.network.SynchronousMISNetwork`; this module only
adds the per-round state machine and the two seeding reactions.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.distributed.message import Message
from repro.distributed.metrics import ChangeMetrics
from repro.distributed.network import SynchronousMISNetwork
from repro.distributed.node import NodeRuntime, NodeState


class BufferedMISNetwork(SynchronousMISNetwork):
    """Synchronous network running Algorithm 2 at every node.

    Examples
    --------
    >>> from repro.graph.generators import erdos_renyi_graph
    >>> network = BufferedMISNetwork(seed=3, initial_graph=erdos_renyi_graph(20, 0.2, seed=1))
    >>> network.verify()
    >>> from repro.workloads.changes import EdgeDeletion
    >>> edge = network.graph.edges()[0]
    >>> metrics = network.apply(EdgeDeletion(*edge))
    >>> metrics.broadcasts <= 3 * network.graph.num_nodes()
    True

    Passing ``network="fast"`` to the constructor returns the id-interned
    array-backed twin
    (:class:`~repro.distributed.fast_network.FastBufferedMISNetwork`), which
    is observably identical at a fraction of the per-change cost.
    """

    PROTOCOL = "buffered"

    # ------------------------------------------------------------------
    # Seeding hooks
    # ------------------------------------------------------------------
    def _seed_violation(self, runtime: NodeRuntime, metrics: ChangeMetrics) -> List[Message]:
        runtime.state = NodeState.C
        runtime.entered_c_round = 1
        metrics.state_changes += 1
        return [self._state_broadcast(runtime.node_id, round_sent=1)]

    def _seed_retirement(self, runtime: NodeRuntime, metrics: ChangeMetrics) -> List[Message]:
        # A gracefully deleted MIS node hands off its role by entering C; its
        # final output is forced to non-MIS by the ``retiring`` flag.
        runtime.state = NodeState.C
        runtime.entered_c_round = 1
        metrics.state_changes += 1
        return [self._state_broadcast(runtime.node_id, round_sent=1)]

    # ------------------------------------------------------------------
    # The per-round state machine
    # ------------------------------------------------------------------
    def _node_step(
        self, runtime: NodeRuntime, inbox: List[Message], round_no: int
    ) -> Tuple[List[Message], bool]:
        outgoing, learned_new_key = self._handle_inbox(runtime, inbox, round_no)
        changed = False

        c_trigger = self._received_c_from_earlier_neighbor(runtime, inbox)

        if runtime.state in (NodeState.M, NodeState.M_BAR) and not runtime.retiring:
            if c_trigger and self._rules_one_two_fire(runtime):
                changed = self._enter_c(runtime, round_no)
                outgoing.append(self._state_broadcast(runtime.node_id, round_sent=round_no))
            elif learned_new_key and self._knows_all_neighbor_keys(runtime):
                # A new neighbor was discovered (edge or node insertion): the
                # node re-checks the MIS invariant from local knowledge and
                # starts the repair if it broke (this is v*'s detection step).
                if runtime.no_earlier_neighbor_in_mis() != runtime.in_mis():
                    changed = self._enter_c(runtime, round_no)
                    outgoing.append(self._state_broadcast(runtime.node_id, round_sent=round_no))
        elif runtime.state is NodeState.C:
            waited_enough = (
                runtime.entered_c_round is not None
                and round_no - runtime.entered_c_round >= 2
            )
            if waited_enough and runtime.no_later_neighbor_in_c():
                runtime.state = NodeState.R
                changed = True
                outgoing.append(self._state_broadcast(runtime.node_id, round_sent=round_no))
        elif runtime.state is NodeState.R:
            if runtime.all_earlier_neighbors_in_output_states():
                if runtime.retiring:
                    runtime.state = NodeState.M_BAR
                elif runtime.no_earlier_neighbor_in_mis():
                    runtime.state = NodeState.M
                else:
                    runtime.state = NodeState.M_BAR
                changed = True
                outgoing.append(self._state_broadcast(runtime.node_id, round_sent=round_no))
        return outgoing, changed

    # ------------------------------------------------------------------
    # Rule helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _received_c_from_earlier_neighbor(runtime: NodeRuntime, inbox: List[Message]) -> bool:
        for message in inbox:
            sender = message.sender
            if sender not in runtime.neighbors or sender not in runtime.neighbor_keys:
                continue
            if message.state != NodeState.C.value:
                continue
            if runtime.neighbor_keys[sender] < runtime.key:
                return True
        return False

    @staticmethod
    def _rules_one_two_fire(runtime: NodeRuntime) -> bool:
        if runtime.state is NodeState.M:
            # Rule 1: an MIS node joins the repair wave unconditionally.
            return True
        # Rule 2: a non-MIS node joins only if no (other) earlier neighbor is
        # still in M -- the trigger sender itself is in C, hence not in M.
        return runtime.no_earlier_neighbor_in_mis()

    @staticmethod
    def _knows_all_neighbor_keys(runtime: NodeRuntime) -> bool:
        return all(other in runtime.neighbor_keys for other in runtime.neighbors)

    @staticmethod
    def _enter_c(runtime: NodeRuntime, round_no: int) -> bool:
        runtime.state = NodeState.C
        runtime.entered_c_round = round_no
        return True
