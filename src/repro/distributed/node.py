"""Per-node runtime state for the simulated protocols.

A simulated node may only use *local* knowledge, exactly as in the paper's
model:

* its own random ID (equivalently its key in the order ``pi``),
* the identities of its current neighbors (maintained by the model: endpoints
  of an inserted/deleted edge and neighbors of an inserted/deleted node are
  notified of the change),
* whatever its neighbors broadcast -- in particular their random IDs and their
  last announced protocol state.

:class:`NodeRuntime` is a passive record of that knowledge; the protocol
classes (:mod:`repro.distributed.protocol_mis`,
:mod:`repro.distributed.protocol_direct`) read and update it.  Keeping the
runtime passive makes it reusable across the synchronous and asynchronous
simulators and keeps the protocol logic in one readable place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set, Tuple

Node = Hashable
PriorityKey = Tuple


class NodeState(enum.Enum):
    """Protocol states of Algorithm 2 (the direct protocol uses only M / M_BAR)."""

    M = "M"
    M_BAR = "M_BAR"
    C = "C"
    R = "R"

    @property
    def is_output(self) -> bool:
        """True for the two output states (MIS / non-MIS)."""
        return self in (NodeState.M, NodeState.M_BAR)

    @property
    def code(self) -> int:
        """Dense integer code of this state (see :data:`STATE_CODES`)."""
        return STATE_CODES[self]


#: Dense integer codes of the protocol states, shared by the dict runtimes and
#: the array-backed network core (:mod:`repro.distributed.fast_network`), which
#: stores states in ``bytearray`` slots.  The two output states come first so
#: ``code <= CODE_M_BAR`` tests "is an output state".
STATE_CODES = {NodeState.M: 0, NodeState.M_BAR: 1, NodeState.C: 2, NodeState.R: 3}

#: Inverse of :data:`STATE_CODES`, indexable by code.
CODE_TO_STATE = tuple(sorted(STATE_CODES, key=STATE_CODES.get))


@dataclass
class NodeRuntime:
    """Local knowledge and protocol state of a single simulated node.

    Attributes
    ----------
    node_id:
        The node's identity (graph node identifier).
    key:
        The node's own priority key (its random ID plus tie-breaks).
    state:
        Current protocol state.
    neighbors:
        The node's current view of its neighbor set (kept in sync with the
        topology by the model-level notifications).
    neighbor_keys:
        Priority keys the node has *learned* (a neighbor's key is unknown
        until that neighbor broadcast it or the model says the nodes knew each
        other already, e.g. for unmuting).
    neighbor_states:
        Last protocol state heard from each neighbor.
    entered_c_round:
        Round in which the node last switched to state C (used by rule 3's
        "at least two rounds ago" condition).
    retiring:
        True while the node is a gracefully deleted relay: it still forwards
        and sends messages but its final output is forced to non-MIS and it is
        removed once the system is stable.
    """

    node_id: Node
    key: PriorityKey
    state: NodeState = NodeState.M_BAR
    neighbors: Set[Node] = field(default_factory=set)
    neighbor_keys: Dict[Node, PriorityKey] = field(default_factory=dict)
    neighbor_states: Dict[Node, NodeState] = field(default_factory=dict)
    entered_c_round: Optional[int] = None
    retiring: bool = False

    # ------------------------------------------------------------------
    # Local views used by the protocol rules
    # ------------------------------------------------------------------
    def known_earlier_neighbors(self) -> Set[Node]:
        """Neighbors the node knows to be earlier than itself in ``pi`` (``I_pi``)."""
        return {
            other
            for other in self.neighbors
            if other in self.neighbor_keys and self.neighbor_keys[other] < self.key
        }

    def known_later_neighbors(self) -> Set[Node]:
        """Neighbors the node knows to be later than itself in ``pi``."""
        return {
            other
            for other in self.neighbors
            if other in self.neighbor_keys and self.neighbor_keys[other] > self.key
        }

    def neighbor_state(self, other: Node) -> Optional[NodeState]:
        """Last state heard from ``other`` (None if never heard)."""
        return self.neighbor_states.get(other)

    def earlier_neighbor_in_state(self, state: NodeState) -> bool:
        """True iff some earlier neighbor is (to the node's knowledge) in ``state``."""
        return any(
            self.neighbor_states.get(other) is state for other in self.known_earlier_neighbors()
        )

    def all_earlier_neighbors_in_output_states(self) -> bool:
        """Rule 4 guard: every earlier neighbor is known to be in M or M_BAR."""
        return all(
            self.neighbor_states.get(other) in (NodeState.M, NodeState.M_BAR)
            for other in self.known_earlier_neighbors()
        )

    def no_earlier_neighbor_in_mis(self) -> bool:
        """MIS-invariant test from local knowledge: no earlier neighbor in M."""
        return not self.earlier_neighbor_in_state(NodeState.M)

    def no_later_neighbor_in_c(self) -> bool:
        """Rule 3 guard: no later neighbor is (to the node's knowledge) in C."""
        return not any(
            self.neighbor_states.get(other) is NodeState.C
            for other in self.known_later_neighbors()
        )

    # ------------------------------------------------------------------
    # Knowledge updates
    # ------------------------------------------------------------------
    def learn_neighbor(
        self, other: Node, key: Optional[PriorityKey], state: Optional[NodeState]
    ) -> None:
        """Record information about a neighbor (from a broadcast or the model)."""
        if key is not None:
            self.neighbor_keys[other] = key
        if state is not None:
            self.neighbor_states[other] = state

    def add_neighbor(self, other: Node) -> None:
        """Model-level notification: ``other`` is now a neighbor."""
        self.neighbors.add(other)

    def export_knowledge(self):
        """The node's directed per-neighbor knowledge, for network snapshots.

        Yields one ``(neighbor, last state value heard or None, key known?)``
        triple per current neighbor -- the exact local knowledge a
        :class:`~repro.distributed.state.NetworkSnapshot` records.
        """
        for other in self.neighbors:
            state = self.neighbor_states.get(other)
            yield other, (None if state is None else state.value), other in self.neighbor_keys

    def drop_neighbor(self, other: Node) -> None:
        """Model-level notification: ``other`` is no longer a neighbor."""
        self.neighbors.discard(other)
        self.neighbor_keys.pop(other, None)
        self.neighbor_states.pop(other, None)

    def in_mis(self) -> bool:
        """Output of the node: True iff its state is M."""
        return self.state is NodeState.M
