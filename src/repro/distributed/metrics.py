"""Complexity measures of the dynamic distributed model (Section 2).

The paper evaluates algorithms by three per-change measures plus one refined
one:

* **adjustment complexity** -- number of nodes that change their *output*
  (MIS membership) as a result of the change,
* **round complexity** -- number of rounds until the system is stable again,
* **broadcast complexity** -- total number of broadcasts sent,
* **bit complexity** -- total number of message bits sent (the O(1)-bits
  refinement of Section 1.1).

:class:`ChangeMetrics` records those four numbers (plus bookkeeping useful for
debugging) for a single topology change; :class:`MetricsAggregator` collects
them over a change sequence and provides the summary statistics printed by
the experiments (sample means, maxima, per-change-kind breakdowns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set

Node = Hashable


@dataclass
class ChangeMetrics:
    """Per-topology-change complexity record."""

    change_kind: str
    rounds: int = 0
    broadcasts: int = 0
    bits: int = 0
    adjustments: int = 0
    adjusted_nodes: Set[Node] = field(default_factory=set)
    state_changes: int = 0
    async_causal_depth: Optional[int] = None

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the report tables."""
        record: Dict[str, float] = {
            "change_kind": self.change_kind,
            "rounds": self.rounds,
            "broadcasts": self.broadcasts,
            "bits": self.bits,
            "adjustments": self.adjustments,
            "state_changes": self.state_changes,
        }
        if self.async_causal_depth is not None:
            record["async_causal_depth"] = self.async_causal_depth
        return record


@dataclass
class MetricsAggregator:
    """Aggregate :class:`ChangeMetrics` over a change sequence."""

    records: List[ChangeMetrics] = field(default_factory=list)

    def add(self, metrics: ChangeMetrics) -> None:
        """Append one per-change record."""
        self.records.append(metrics)

    def extend(self, metrics_list: List[ChangeMetrics]) -> None:
        """Append many records."""
        self.records.extend(metrics_list)

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    @property
    def num_changes(self) -> int:
        """Number of recorded changes."""
        return len(self.records)

    def mean(self, attribute: str, change_kind: Optional[str] = None) -> float:
        """Sample mean of ``attribute`` (optionally restricted to one change kind)."""
        values = self._values(attribute, change_kind)
        return sum(values) / len(values) if values else 0.0

    def maximum(self, attribute: str, change_kind: Optional[str] = None) -> float:
        """Maximum of ``attribute`` (optionally restricted to one change kind)."""
        values = self._values(attribute, change_kind)
        return max(values) if values else 0.0

    def total(self, attribute: str, change_kind: Optional[str] = None) -> float:
        """Sum of ``attribute`` (optionally restricted to one change kind)."""
        return sum(self._values(attribute, change_kind))

    def change_kinds(self) -> List[str]:
        """The distinct change kinds present, in first-appearance order."""
        seen: List[str] = []
        for record in self.records:
            if record.change_kind not in seen:
                seen.append(record.change_kind)
        return seen

    def by_kind_summary(self, attribute: str) -> Dict[str, float]:
        """Mapping ``change kind -> mean attribute`` used by the report tables."""
        return {kind: self.mean(attribute, kind) for kind in self.change_kinds()}

    def summary(self) -> Dict[str, float]:
        """Overall means of the four complexity measures."""
        return {
            "mean_adjustments": self.mean("adjustments"),
            "mean_rounds": self.mean("rounds"),
            "mean_broadcasts": self.mean("broadcasts"),
            "mean_bits": self.mean("bits"),
            "max_adjustments": self.maximum("adjustments"),
            "max_rounds": self.maximum("rounds"),
            "max_broadcasts": self.maximum("broadcasts"),
            "num_changes": float(self.num_changes),
        }

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _values(self, attribute: str, change_kind: Optional[str]) -> List[float]:
        values: List[float] = []
        for record in self.records:
            if change_kind is not None and record.change_kind != change_kind:
                continue
            value = getattr(record, attribute)
            if value is None:
                continue
            values.append(float(value))
        return values
