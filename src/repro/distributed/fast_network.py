"""Id-interned, flat-array network core for the distributed simulators.

The dict-based :class:`~repro.distributed.network.SynchronousMISNetwork`
keeps one :class:`~repro.distributed.node.NodeRuntime` per node -- sets of
neighbor labels, dicts of learned keys and states -- and its round loop
iterates *every* runtime every round.  That is faithful to the paper's model
but caps protocol experiments at a few thousand nodes: each change pays
``O(n)`` for the before/after output snapshots and ``O(n log n)`` per round
for the full sorted sweep, even when the repair wave touches three nodes.

This module rebuilds the whole subsystem with the same discipline as
:class:`~repro.core.fast_engine.FastEngine`:

* node labels are *interned* to dense integer ids on arrival; ids of deleted
  nodes go to a free list and are reused, so the parallel arrays never grow
  beyond the historical peak node count;
* adjacency is one ``array('q')`` row of neighbor ids per node; each node's
  *local knowledge* (the last state heard from each neighbor, and whether its
  random ID is known) lives in ``bytearray`` rows aligned index-for-index
  with the adjacency row -- dropping a neighbor swap-deletes all three rows
  in tandem, so the protocol rules are cache-friendly integer scans with no
  hashing on the hot path;
* per-round message buffers are lists of small integer tuples delivered
  through the adjacency rows, instead of per-node dict queues;
* the round loop only visits the *active* set -- inbox receivers plus nodes
  in transient states -- and the adjustment count is computed from an
  epoch-stamped touched list, never from an ``O(n)`` state snapshot.

The three simulators here -- :class:`FastBufferedMISNetwork` (Algorithm 2),
:class:`FastDirectMISNetwork` (the direct template protocol) and
:class:`FastAsyncDirectMISNetwork` (the event-driven asynchronous execution)
-- are *observably identical* to their dict twins: same per-change metrics
(rounds, broadcasts, bits, state changes, adjustments and the adjusted-node
sets), same round-by-round traces under round logging, same outputs under
the same seed.  That claim is machine-checked by
:func:`repro.testing.protocol_differential.replay_protocol_differential` and
``tests/conformance/test_protocol_differential.py``; the speedup is measured
by ``benchmarks/bench_a5_distributed.py``.

Select a backend through the network registry
(:mod:`repro.distributed.network_api`) or simply pass ``network="fast"`` to
any of the dict simulator classes -- their constructors dispatch through the
registry, so existing call sites pick the fast core up with zero edits.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.fast_engine import FastGraphView, reference_mis
from repro.core.priorities import PriorityAssigner, RandomPriorityAssigner
from repro.core.state_api import EventSequence
from repro.distributed.message import MessageKind, id_message_bits, state_message_bits
from repro.distributed.metrics import ChangeMetrics, MetricsAggregator
from repro.distributed.async_network import AsyncDirectMISNetwork
from repro.distributed.network import ProtocolError, RoundRecord, SynchronousMISNetwork
from repro.distributed.node import CODE_TO_STATE, NodeRuntime, NodeState
from repro.distributed.scheduler import DelayScheduler, RandomDelayScheduler
from repro.parallel.kernels import (
    GUARD_EARLIER_SETTLED as _GUARD_EARLIER_SETTLED,
    GUARD_KNOWS_ALL_KEYS as _GUARD_KNOWS_ALL_KEYS,
    GUARD_NO_EARLIER_MIS as _GUARD_NO_EARLIER_MIS,
    GUARD_NO_LATER_C as _GUARD_NO_LATER_C,
    GUARD_UNCERTAIN as _GUARD_UNCERTAIN,
)
from repro.distributed.state import (
    NetworkSnapshot,
    NetworkStateError,
    check_restorable,
    copy_metric_records,
)
from repro.graph.dynamic_graph import DynamicGraph, GraphError
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    TopologyChange,
    validate_change,
)

Node = Hashable

# State codes (see repro.distributed.node.STATE_CODES): outputs first.
CODE_M = NodeState.M.code
CODE_M_BAR = NodeState.M_BAR.code
CODE_C = NodeState.C.code
CODE_R = NodeState.R.code
#: Knowledge rows use one extra code for "state never heard".
CODE_UNKNOWN = 4

_KIND_STATE = 0
_KIND_ID = 1
_KIND_VALUES = (MessageKind.STATE.value, MessageKind.ID_AND_STATE.value)
_STATE_VALUES = tuple(state.value for state in CODE_TO_STATE)

#: A broadcast in flight: ``(sender_id, kind_code, state_code, requests_introduction)``.
FastMessage = Tuple[int, int, int, bool]


class FastNetworkCore:
    """Interned storage shared by the synchronous and asynchronous fast simulators.

    Holds the parallel id-indexed arrays (labels, adjacency, knowledge,
    priorities, protocol state), the label interning with free-list reuse,
    and the epoch-stamped adjustment accounting.  Subclasses add the round
    loop / event loop and the topology-change controller.
    """

    def __init__(
        self,
        seed: int = 0,
        initial_graph: Optional[DynamicGraph] = None,
        priorities: Optional[PriorityAssigner] = None,
    ) -> None:
        # Dealt keys are snapshotted label-keyed via _keys; restore_keys()
        # rebuilds the assigner from them.
        self._priorities = priorities if priorities is not None else RandomPriorityAssigner(seed)  # repro-lint: transient -- keys snapshotted via _keys
        self._aggregator = MetricsAggregator()
        self._init_storage()
        if initial_graph is not None:
            self._bootstrap(initial_graph)

    def _init_storage(self) -> None:
        """(Re)initialize the interned storage to the empty network.

        Factored out of ``__init__`` so :meth:`restore` can rebuild the
        arrays from a snapshot without re-running construction.
        """
        # id-indexed parallel arrays (grown together by _new_slot).
        self._labels: List[Optional[Node]] = []  # id -> label (None = free slot)
        self._adj: List[array] = []  # id -> array('q') of neighbor ids
        self._nstate: List[bytearray] = []  # id -> known state per adjacency slot
        self._nkey: List[bytearray] = []  # id -> 1 iff that neighbor's key is known
        self._prio: List[float] = []  # repro-lint: transient -- cache of _keys[nid][0], rebuilt on restore
        self._keys: List[Optional[Tuple]] = []  # id -> full priority key
        self._state = bytearray()  # id -> protocol state code
        self._alive = bytearray()  # repro-lint: transient -- derived; restore re-interns every snapshot node
        self._retiring = bytearray()  # id -> 1 while a graceful deletion relays
        self._entered_c = array("q")  # repro-lint: transient -- per-repair scratch; snapshots are quiescent
        # Per-change adjustment accounting (epoch stamps avoid O(n) clears).
        self._snap_stamp: List[int] = []  # repro-lint: transient -- per-change accounting scratch
        self._snap_bit = bytearray()  # repro-lint: transient -- per-change accounting scratch
        self._epoch = 0  # repro-lint: transient -- per-change accounting scratch
        self._touched: List[int] = []  # repro-lint: transient -- per-change accounting scratch
        # Label interning.
        self._id_of: Dict[Node, int] = {}
        self._free: List[int] = []  # repro-lint: transient -- interning free list, empty after restore
        self._num_edges = 0  # repro-lint: transient -- derived count; the snapshot stores the edge list

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def _bootstrap(self, graph: DynamicGraph) -> None:
        for node in graph.nodes():
            self._intern(node, snapshot=False)
        id_of = self._id_of
        for u, v in graph.edges():
            iu, iv = id_of[u], id_of[v]
            self._add_half_edge(iu, iv)
            self._add_half_edge(iv, iu)
            self._num_edges += 1
        # Greedy pass in increasing pi: any MIS neighbor was processed
        # earlier, unprocessed (hence later) neighbors still read as non-MIS.
        state = self._state
        order = sorted(range(len(self._labels)), key=lambda i: self._keys[i])
        for nid in order:
            if not any(state[m] == CODE_M for m in self._adj[nid]):
                state[nid] = CODE_M
        # The system starts stable: every node knows every neighbor's random
        # ID and current output (exactly as the dict bootstrap installs).
        for nid in order:
            row = self._adj[nid]
            nstate = self._nstate[nid]
            nkey = self._nkey[nid]
            for position, m in enumerate(row):
                nstate[position] = state[m]
                nkey[position] = 1

    # ------------------------------------------------------------------
    # Interning / slot management
    # ------------------------------------------------------------------
    def _new_slot(self) -> int:
        nid = len(self._labels)
        self._labels.append(None)
        self._adj.append(array("q"))
        self._nstate.append(bytearray())
        self._nkey.append(bytearray())
        self._prio.append(0.0)
        self._keys.append(None)
        self._state.append(CODE_M_BAR)
        self._alive.append(0)
        self._retiring.append(0)
        self._entered_c.append(-1)
        self._snap_stamp.append(0)
        self._snap_bit.append(0)
        return nid

    def _intern(self, label: Node, snapshot: bool = True) -> int:
        """Assign ``label`` a dense id (reusing a free slot) and its priority.

        With ``snapshot`` (the default, used for mid-change insertions) the
        new node is stamped into the touched set with a non-MIS "before"
        output, matching the dict controller's ``before.get(node, False)``.
        """
        nid = self._free.pop() if self._free else self._new_slot()
        key = self._priorities.assign(label)
        self._labels[nid] = label
        self._prio[nid] = float(key[0])
        self._keys[nid] = tuple(key)
        self._state[nid] = CODE_M_BAR
        self._alive[nid] = 1
        self._retiring[nid] = 0
        self._entered_c[nid] = -1
        del self._adj[nid][:]
        del self._nstate[nid][:]
        del self._nkey[nid][:]
        self._id_of[label] = nid
        if snapshot:
            self._snap_stamp[nid] = self._epoch
            self._snap_bit[nid] = 0
            self._touched.append(nid)
        return nid

    def _release(self, nid: int) -> None:
        """Return a dead id to the free list (its label was already unmapped)."""
        self._labels[nid] = None
        self._keys[nid] = None
        del self._adj[nid][:]
        del self._nstate[nid][:]
        del self._nkey[nid][:]
        self._free.append(nid)

    def _require(self, label: Node) -> int:
        nid = self._id_of.get(label)
        if nid is None:
            raise GraphError(f"node {label!r} is not in the graph")
        return nid

    def _detach_node(self, nid: int, label: Node) -> None:
        """Remove a node from the topology, the arrays and its neighbors' views.

        The slot stays allocated (``_release`` returns it to the free list
        once the change that deleted the node has been fully accounted).
        """
        row = self._adj[nid]
        for m in list(row):
            self._remove_half_edge(m, nid)
        self._num_edges -= len(row)
        del row[:]
        del self._nstate[nid][:]
        del self._nkey[nid][:]
        self._alive[nid] = 0
        del self._id_of[label]
        self._priorities.forget(label)

    # ------------------------------------------------------------------
    # Aligned adjacency + knowledge rows
    # ------------------------------------------------------------------
    def _add_half_edge(
        self, nid: int, other: int, known_state: int = CODE_UNKNOWN, known_key: int = 0
    ) -> None:
        self._adj[nid].append(other)
        self._nstate[nid].append(known_state)
        self._nkey[nid].append(known_key)

    def _remove_half_edge(self, nid: int, other: int) -> None:
        row = self._adj[nid]
        position = row.index(other)
        last = len(row) - 1
        nstate = self._nstate[nid]
        nkey = self._nkey[nid]
        if position != last:
            row[position] = row[last]
            nstate[position] = nstate[last]
            nkey[position] = nkey[last]
        del row[last]
        del nstate[last]
        del nkey[last]

    def _earlier(self, a: int, b: int) -> bool:
        """True iff id ``a`` comes before id ``b`` in ``pi``."""
        pa, pb = self._prio[a], self._prio[b]
        if pa != pb:
            return pa < pb
        return self._keys[a] < self._keys[b]

    # ------------------------------------------------------------------
    # Local-knowledge views (the protocol rules)
    # ------------------------------------------------------------------
    def _no_earlier_neighbor_in_mis(self, nid: int) -> bool:
        """MIS-invariant test from local knowledge: no known earlier neighbor in M."""
        row = self._adj[nid]
        nstate = self._nstate[nid]
        nkey = self._nkey[nid]
        prio, keys = self._prio, self._keys
        p, key = prio[nid], keys[nid]
        for position, m in enumerate(row):
            if nstate[position] == CODE_M and nkey[position]:
                if prio[m] < p or (prio[m] == p and keys[m] < key):
                    return False
        return True

    def _no_later_neighbor_in_c(self, nid: int) -> bool:
        """Rule 3 guard: no known later neighbor is (to local knowledge) in C."""
        row = self._adj[nid]
        nstate = self._nstate[nid]
        nkey = self._nkey[nid]
        prio, keys = self._prio, self._keys
        p, key = prio[nid], keys[nid]
        for position, m in enumerate(row):
            if nstate[position] == CODE_C and nkey[position]:
                if prio[m] > p or (prio[m] == p and keys[m] > key):
                    return False
        return True

    def _all_earlier_neighbors_in_output_states(self, nid: int) -> bool:
        """Rule 4 guard: every known earlier neighbor is known to be in M or M_BAR."""
        row = self._adj[nid]
        nstate = self._nstate[nid]
        nkey = self._nkey[nid]
        prio, keys = self._prio, self._keys
        p, key = prio[nid], keys[nid]
        for position, m in enumerate(row):
            if nkey[position] and (prio[m] < p or (prio[m] == p and keys[m] < key)):
                if nstate[position] > CODE_M_BAR:
                    return False
        return True

    def _knows_all_neighbor_keys(self, nid: int) -> bool:
        return 0 not in self._nkey[nid]

    # ------------------------------------------------------------------
    # State changes and adjustment accounting
    # ------------------------------------------------------------------
    def _set_state(self, nid: int, code: int) -> None:
        if self._snap_stamp[nid] != self._epoch:
            self._snap_stamp[nid] = self._epoch
            self._snap_bit[nid] = 1 if self._state[nid] == CODE_M else 0
            self._touched.append(nid)
        self._state[nid] = code

    def _begin_change(self) -> None:
        self._epoch += 1
        self._touched = []

    def _finalize(self, metrics: ChangeMetrics) -> None:
        """Adjustment complexity from the touched set (no O(n) snapshots)."""
        state, alive, labels = self._state, self._alive, self._labels
        snap_bit = self._snap_bit
        adjusted: Set[Node] = set()
        for nid in self._touched:
            if alive[nid] and (1 if state[nid] == CODE_M else 0) != snap_bit[nid]:
                adjusted.add(labels[nid])
        metrics.adjusted_nodes = adjusted
        metrics.adjustments = len(adjusted)

    # ------------------------------------------------------------------
    # Read access (shared public surface)
    # ------------------------------------------------------------------
    @property
    def priorities(self) -> PriorityAssigner:
        """The order ``pi``."""
        return self._priorities

    @property
    def metrics(self) -> MetricsAggregator:
        """Per-change metrics accumulated so far."""
        return self._aggregator

    @property
    def graph(self) -> FastGraphView:
        """Read-only :class:`DynamicGraph`-shaped view of the current topology."""
        return FastGraphView(self)

    def num_nodes(self) -> int:
        """Number of live nodes."""
        return len(self._id_of)

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    def capacity(self) -> int:
        """Number of allocated id slots (live + free); never shrinks."""
        return len(self._labels)

    def free_slots(self) -> int:
        """Number of ids currently waiting on the free list."""
        return len(self._free)

    def nodes(self) -> List[Node]:
        """All live node labels."""
        return list(self._id_of)

    def has_node(self, label: Node) -> bool:
        """Whether ``label`` is a live node."""
        return label in self._id_of

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        iu = self._id_of.get(u)
        iv = self._id_of.get(v)
        return iu is not None and iv is not None and iv in self._adj[iu]

    def degree(self, label: Node) -> int:
        """Degree of ``label`` (raises :class:`GraphError` if absent)."""
        return len(self._adj[self._require(label)])

    def neighbor_labels(self, label: Node) -> List[Node]:
        """The neighbor labels of ``label``."""
        labels = self._labels
        return [labels[m] for m in self._adj[self._require(label)]]

    def mis(self) -> Set[Node]:
        """The current maximal independent set (outputs of all nodes)."""
        state = self._state
        return {label for label, nid in self._id_of.items() if state[nid] == CODE_M}

    def states(self) -> Dict[Node, bool]:
        """Copy of the output map ``node -> in MIS?``."""
        state = self._state
        return {label: state[nid] == CODE_M for label, nid in self._id_of.items()}

    def node_runtime(self, label: Node) -> NodeRuntime:
        """Materialize a :class:`NodeRuntime` view of one node (tests/debugging).

        The returned record is a *copy* of the interned state -- mutating it
        does not affect the simulation (unlike the dict simulators, whose
        runtimes are live).
        """
        nid = self._require(label)
        labels = self._labels
        row = self._adj[nid]
        nstate = self._nstate[nid]
        nkey = self._nkey[nid]
        runtime = NodeRuntime(
            node_id=label,
            key=self._keys[nid],
            state=CODE_TO_STATE[self._state[nid]],
            neighbors={labels[m] for m in row},
        )
        for position, m in enumerate(row):
            runtime.learn_neighbor(
                labels[m],
                self._keys[m] if nkey[position] else None,
                CODE_TO_STATE[nstate[position]] if nstate[position] != CODE_UNKNOWN else None,
            )
        entered = self._entered_c[nid]
        runtime.entered_c_round = None if entered < 0 else int(entered)
        runtime.retiring = bool(self._retiring[nid])
        return runtime

    def verify(self, reference_engine: str = "fast") -> None:
        """Assert that the outputs equal the random-greedy MIS of the graph.

        Identical contract to the dict simulators' ``verify``; the default
        reference is the array-backed ``"fast"`` engine because this core
        exists for networks where the dict recompute is the bottleneck.  Any
        registered engine backend name is accepted.
        """
        expected = reference_mis(self.graph, self._priorities, reference_engine)
        actual = self.mis()
        if expected != actual:
            missing = expected - actual
            extra = actual - expected
            raise AssertionError(
                f"protocol output diverged from random greedy: "
                f"missing={sorted(missing, key=repr)[:5]}, extra={sorted(extra, key=repr)[:5]}"
            )
        transient = [
            self._labels[nid]
            for nid in sorted(self._id_of.values())
            if self._state[nid] > CODE_M_BAR
        ]
        if transient:
            raise AssertionError(f"nodes left in transient states: {transient[:5]}")

    # ------------------------------------------------------------------
    # Snapshot / restore (the Checkpointable pair)
    # ------------------------------------------------------------------
    def _scheduler_cursor(self) -> int:
        """Event-sequence position recorded in snapshots (0 for synchronous cores)."""
        return 0

    def _scheduler_state(self) -> Optional[Tuple]:
        """Resumable scheduler state recorded in snapshots (``None`` if stateless)."""
        return None

    def snapshot(self) -> NetworkSnapshot:
        """Capture the simulator's knowledge-level state between changes.

        The snapshot is label-keyed -- dense ids, free lists and array
        layouts never leak into it -- so it restores into any registered
        network backend running the same protocol, including the dict/set
        simulators.
        """
        protocol = getattr(type(self), "PROTOCOL", None)
        if protocol is None:
            raise NetworkStateError(
                "this simulator class declares no PROTOCOL name; only concrete "
                "registered protocols can snapshot"
            )
        state, labels = self._state, self._labels
        for nid in sorted(self._id_of.values()):
            if state[nid] > CODE_M_BAR or self._retiring[nid]:
                raise NetworkStateError(
                    f"node {labels[nid]!r} is mid-repair; snapshots are only "
                    "valid between changes"
                )
        states: Dict[Node, str] = {}
        priority_keys: Dict[Node, Tuple] = {}
        knowledge: Dict[Tuple[Node, Node], Tuple[Optional[str], bool]] = {}
        for label, nid in self._id_of.items():
            states[label] = _STATE_VALUES[state[nid]]
            priority_keys[label] = self._keys[nid]
            row = self._adj[nid]
            nstate = self._nstate[nid]
            nkey = self._nkey[nid]
            for position, m in enumerate(row):
                heard = nstate[position]
                knowledge[(label, labels[m])] = (
                    None if heard == CODE_UNKNOWN else _STATE_VALUES[heard],
                    bool(nkey[position]),
                )
        return NetworkSnapshot(
            protocol=protocol,
            nodes=tuple(self._id_of),
            edges=tuple(self.graph.edges()),
            states=states,
            priority_keys=priority_keys,
            knowledge=knowledge,
            scheduler_cursor=self._scheduler_cursor(),
            metrics=copy_metric_records(self._aggregator.records),
            scheduler_state=self._scheduler_state(),
        )

    def restore(self, snapshot: NetworkSnapshot) -> None:
        """Reset the simulator to a previously captured :class:`NetworkSnapshot`.

        The interned storage is rebuilt from scratch: labels re-intern in
        snapshot order, edges and the aligned knowledge rows are installed
        verbatim, and the accumulated metrics records are restored, so a
        resumed run is observably identical to an uninterrupted one.
        """
        check_restorable(snapshot, getattr(type(self), "PROTOCOL", None))
        self._priorities.restore_keys(
            {node: tuple(key) for node, key in snapshot.priority_keys.items()}
        )
        self._init_storage()
        for node in snapshot.nodes:
            nid = self._intern(node, snapshot=False)
            self._state[nid] = NodeState(snapshot.states[node]).code
        knowledge = snapshot.knowledge
        for u, v in snapshot.edges:
            iu, iv = self._require(u), self._require(v)
            for nid, label, other, oid in ((iu, u, v, iv), (iv, v, u, iu)):
                heard, key_known = knowledge.get((label, other), (None, False))
                self._add_half_edge(
                    nid,
                    oid,
                    known_state=CODE_UNKNOWN if heard is None else NodeState(heard).code,
                    known_key=1 if key_known else 0,
                )
            self._num_edges += 1
        self._aggregator = MetricsAggregator(records=list(copy_metric_records(snapshot.metrics)))

    def check_interning_invariants(self, expect_stable: bool = True) -> None:
        """Assert the interning / knowledge / adjacency bookkeeping is sound.

        With ``expect_stable`` (between changes) additionally asserts the
        quiescence knowledge invariant: every node knows every neighbor's key
        and *current* state -- which is exactly what makes the protocols'
        local decisions agree with the global greedy MIS between repairs.
        """
        if not __debug__:  # pragma: no cover - -O strips the asserts below
            raise RuntimeError(
                "check_interning_invariants needs assertions enabled (do not run "
                "the conformance suite under python -O)"
            )
        capacity = len(self._labels)
        parallels = (
            self._adj,
            self._nstate,
            self._nkey,
            self._prio,
            self._keys,
            self._snap_stamp,
        )
        for parallel in parallels:
            assert len(parallel) == capacity, "parallel arrays diverged in length"
        for byte_array in (self._state, self._alive, self._retiring, self._snap_bit):
            assert len(byte_array) == capacity
        assert len(self._entered_c) == capacity
        free = set(self._free)
        assert len(free) == len(self._free), "duplicate ids on the free list"
        live = set(self._id_of.values())
        assert not (free & live), "id is both free and live"
        assert free | live == set(range(capacity)), "leaked id slot"
        half_edges = 0
        for label, nid in self._id_of.items():
            assert self._alive[nid] and self._labels[nid] == label, "intern map broken"
            assert self._keys[nid] is not None and self._prio[nid] == self._keys[nid][0]
            assert self._priorities.knows(label), "live node lost its priority"
            row = self._adj[nid]
            assert len(self._nstate[nid]) == len(row) == len(self._nkey[nid])
            assert len(set(row)) == len(row), "duplicate adjacency entry"
            for position, m in enumerate(row):
                assert m != nid, "self loop"
                assert self._alive[m], "edge to a dead node"
                assert nid in self._adj[m], "asymmetric adjacency"
                if expect_stable:
                    assert self._nkey[nid][position], "neighbor key unknown at stability"
                    assert self._nstate[nid][position] == self._state[m], (
                        "stale neighbor-state knowledge at stability"
                    )
            half_edges += len(row)
            if expect_stable:
                assert self._state[nid] <= CODE_M_BAR, "transient state at stability"
        for nid in free:
            assert not self._alive[nid], "free id still alive"
            assert self._labels[nid] is None and self._keys[nid] is None
            assert len(self._adj[nid]) == 0, "free id kept adjacency"
        assert half_edges == 2 * self._num_edges, "edge counter out of sync"


class FastSynchronousMISNetwork(FastNetworkCore):
    """Array-backed twin of :class:`~repro.distributed.network.SynchronousMISNetwork`.

    Implements the same synchronous round loop and topology-change controller
    (model-level notifications, discovery phases, metric accounting, round
    caps) over the interned arrays, visiting only the active node set each
    round.  The per-round protocol state machine is supplied by the two
    concrete subclasses, exactly mirroring the dict protocol classes.
    """

    # Shared with the dict twin by reference, so the safety caps can never
    # drift between the two backends.
    ROUND_CAP_FACTOR = SynchronousMISNetwork.ROUND_CAP_FACTOR
    ROUND_CAP_SLACK = SynchronousMISNetwork.ROUND_CAP_SLACK

    def __init__(
        self,
        seed: int = 0,
        initial_graph: Optional[DynamicGraph] = None,
        priorities: Optional[PriorityAssigner] = None,
    ) -> None:
        self._round_logging = False
        self._last_round_log: List[RoundRecord] = []
        self._introduced: Set[int] = set()
        self._transient: Set[int] = set()
        # Optional shared-memory guard-evaluation pool (attach_parallel);
        # never part of snapshots.  The published planes go stale on every
        # topology change and on unflushed knowledge-row writes.
        self._pool = None
        self._pool_stale = True
        self._pool_indptr: Optional[array] = None
        self._pool_dirty: Set[int] = set()
        super().__init__(seed=seed, initial_graph=initial_graph, priorities=priorities)

    # ------------------------------------------------------------------
    # Observability (same surface as the dict simulator)
    # ------------------------------------------------------------------
    def enable_round_logging(self, enabled: bool = True) -> None:
        """Turn per-round observability records on or off (off by default)."""
        self._round_logging = enabled
        if not enabled:
            self._last_round_log = []

    def last_change_trace(self) -> List[RoundRecord]:
        """Round-by-round records of the most recent change (requires logging)."""
        return list(self._last_round_log)

    def restore(self, snapshot: NetworkSnapshot) -> None:
        super().restore(snapshot)
        self._introduced = set()
        self._transient = set()
        self._last_round_log = []
        self._pool_stale = True
        self._pool_dirty.clear()

    # ------------------------------------------------------------------
    # Parallel guard evaluation
    # ------------------------------------------------------------------
    def attach_parallel(self, pool) -> None:
        """Evaluate per-round protocol guards on ``pool``.

        ``pool`` is a :class:`repro.parallel.pool.WorkerPool` (or ``None``
        to detach).  Rounds whose active set passes the pool's engagement
        threshold evaluate all four local guards in one kernel sweep after
        the absorb phase; everything else -- small rounds, priority ties,
        any pool failure -- falls back to the serial guard methods, so every
        execution is observably identical to the single-process simulator
        (the protocol differential harness machine-checks this).
        """
        self._pool = pool
        self._pool_stale = True
        self._pool_dirty.clear()

    @property
    def parallel_pool(self):
        """The attached :class:`~repro.parallel.pool.WorkerPool` (or ``None``)."""
        return self._pool

    def _publish_topology(self) -> None:
        """Ship CSR adjacency, priorities and full knowledge rows to the pool.

        Called once per change (topology and priorities are frozen while the
        round loop runs); later rounds of the same change only refresh the
        knowledge rows of nodes that received messages.
        """
        pool = self._pool
        adj = self._adj
        count = len(adj)
        indptr = array("q", bytes(8 * (count + 1)))
        total = 0
        for nid, row in enumerate(adj):
            indptr[nid] = total
            total += len(row)
        indptr[count] = total
        indices = array("q", bytes(8 * total))
        nstate = bytearray(total)
        nkey = bytearray(total)
        # memoryview targets: slice assignment is length-checked, so a
        # knowledge row that drifted from its adjacency row fails loudly
        # instead of silently shifting every later row's offsets.
        nstate_view, nkey_view = memoryview(nstate), memoryview(nkey)
        position = 0
        for nid, row in enumerate(adj):
            stop = position + len(row)
            indices[position:stop] = row
            nstate_view[position:stop] = self._nstate[nid]
            nkey_view[position:stop] = self._nkey[nid]
            position = stop
        pool.publish("w_indptr", indptr.tobytes())
        pool.publish("w_indices", indices.tobytes())
        pool.publish("w_prio", array("d", self._prio).tobytes())
        pool.publish("w_nstate", nstate)
        pool.publish("w_nkey", nkey)
        self._pool_indptr = indptr
        self._pool_stale = False

    def _parallel_guards(self, active_sorted: List[int]) -> Optional[bytes]:
        """Guard masks for ``active_sorted`` (post-absorb), or ``None``.

        Returns one :mod:`repro.parallel.kernels` ``GUARD_*`` bitmask per
        active node, or ``None`` when the pool did not run -- the caller
        then decides with the serial guard methods (the inboxes are already
        absorbed either way, so no work repeats).
        """
        pool = self._pool
        if self._pool_stale:
            self._publish_topology()
        else:
            indptr = self._pool_indptr
            nstate_view = pool.view("w_nstate")
            nkey_view = pool.view("w_nkey")
            for nid in self._pool_dirty:
                start, stop = indptr[nid], indptr[nid + 1]
                nstate_view[start:stop] = self._nstate[nid]
                nkey_view[start:stop] = self._nkey[nid]
        self._pool_dirty.clear()
        pool.publish("w_active", array("q", active_sorted).tobytes())
        pool.ensure("w_guards", len(active_sorted))
        if not pool.run("network_guards", len(active_sorted)):
            return None
        return bytes(pool.view("w_guards"))

    # Mask-or-serial guard accessors: a kernel mask answers when it is
    # certain; ``None`` (no mask) or the uncertain bit (an exact priority
    # tie) re-evaluates with the full-key serial predicate.
    def _g_no_earlier_mis(self, nid: int, mask: Optional[int]) -> bool:
        if mask is None or mask & _GUARD_UNCERTAIN:
            return self._no_earlier_neighbor_in_mis(nid)
        return bool(mask & _GUARD_NO_EARLIER_MIS)

    def _g_no_later_c(self, nid: int, mask: Optional[int]) -> bool:
        if mask is None or mask & _GUARD_UNCERTAIN:
            return self._no_later_neighbor_in_c(nid)
        return bool(mask & _GUARD_NO_LATER_C)

    def _g_earlier_settled(self, nid: int, mask: Optional[int]) -> bool:
        if mask is None or mask & _GUARD_UNCERTAIN:
            return self._all_earlier_neighbors_in_output_states(nid)
        return bool(mask & _GUARD_EARLIER_SETTLED)

    def _g_knows_all_keys(self, nid: int, mask: Optional[int]) -> bool:
        if mask is None or mask & _GUARD_UNCERTAIN:
            return self._knows_all_neighbor_keys(nid)
        return bool(mask & _GUARD_KNOWS_ALL_KEYS)

    # ------------------------------------------------------------------
    # Topology-change API
    # ------------------------------------------------------------------
    def apply(self, change: TopologyChange) -> ChangeMetrics:
        """Apply one topology change, run the protocol to stability, return metrics."""
        validate_change(self.graph, change)
        self._begin_change()
        self._introduced = set()
        if isinstance(change, EdgeInsertion):
            metrics = self._apply_edge_insertion(change)
        elif isinstance(change, EdgeDeletion):
            metrics = self._apply_edge_deletion(change)
        elif isinstance(change, NodeInsertion):
            metrics = self._apply_node_insertion(change)
        elif isinstance(change, NodeUnmuting):
            metrics = self._apply_node_unmuting(change)
        elif isinstance(change, NodeDeletion):
            metrics = self._apply_node_deletion(change)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown change type: {change!r}")
        self._aggregator.add(metrics)
        return metrics

    def apply_sequence(self, changes: Iterable[TopologyChange]) -> List[ChangeMetrics]:
        """Apply a whole change sequence, returning one metrics record per change."""
        return [self.apply(change) for change in changes]

    # ------------------------------------------------------------------
    # Change handlers (mirror the dict controller step for step)
    # ------------------------------------------------------------------
    def _apply_edge_insertion(self, change: EdgeInsertion) -> ChangeMetrics:
        metrics = ChangeMetrics("edge_insertion")
        iu, iv = self._require(change.u), self._require(change.v)
        self._add_half_edge(iu, iv)
        self._add_half_edge(iv, iu)
        self._num_edges += 1
        # Section 4.1: both endpoints broadcast their random ID and state in
        # the first round so that each learns the other's order and output.
        seeds = [self._id_broadcast(iu), self._id_broadcast(iv)]
        self._introduced.update((iu, iv))
        self._run_until_stable(metrics, seeds)
        self._finalize(metrics)
        return metrics

    def _apply_edge_deletion(self, change: EdgeDeletion) -> ChangeMetrics:
        metrics = ChangeMetrics("edge_deletion")
        iu, iv = self._require(change.u), self._require(change.v)
        self._remove_half_edge(iu, iv)
        self._remove_half_edge(iv, iu)
        self._num_edges -= 1
        # Both endpoints are notified by the model; only the later one can be
        # in violation, and it can tell purely from local knowledge.
        later = iu if self._earlier(iv, iu) else iv
        seeds = self._maybe_seed_violation(later, metrics)
        self._run_until_stable(metrics, seeds)
        self._finalize(metrics)
        return metrics

    def _apply_node_insertion(self, change: NodeInsertion) -> ChangeMetrics:
        metrics = ChangeMetrics("node_insertion")
        neighbor_ids = [self._id_of[other] for other in change.neighbors]
        nid = self._intern(change.node)
        for oid in neighbor_ids:
            self._add_half_edge(nid, oid)
            self._add_half_edge(oid, nid)
        self._num_edges += len(neighbor_ids)
        # Section 4.1: the new node broadcasts its ID and a provisional
        # non-MIS state; neighbors introduce themselves back (O(d(v*))
        # broadcasts), after which the new node can check the invariant.  An
        # isolated node has nobody to hear from and checks immediately.
        seeds = [self._id_broadcast(nid, requests_introduction=True)]
        self._introduced.add(nid)
        if not neighbor_ids:
            seeds.extend(self._maybe_seed_violation(nid, metrics))
        self._run_until_stable(metrics, seeds)
        self._finalize(metrics)
        return metrics

    def _apply_node_unmuting(self, change: NodeUnmuting) -> ChangeMetrics:
        metrics = ChangeMetrics("node_unmuting")
        neighbor_ids = [self._id_of[other] for other in change.neighbors]
        nid = self._intern(change.node)
        # The unmuted node overheard its neighbors all along: it already knows
        # their IDs and current states without any extra broadcast.
        for oid in neighbor_ids:
            self._add_half_edge(nid, oid, known_state=self._state[oid], known_key=1)
            self._add_half_edge(oid, nid)
        self._num_edges += len(neighbor_ids)
        # It announces itself once; nobody needs to introduce themselves back.
        seeds = [self._id_broadcast(nid, requests_introduction=False)]
        self._introduced.add(nid)
        seeds.extend(self._maybe_seed_violation(nid, metrics))
        self._run_until_stable(metrics, seeds)
        self._finalize(metrics)
        return metrics

    def _apply_node_deletion(self, change: NodeDeletion) -> ChangeMetrics:
        metrics = ChangeMetrics("node_deletion")
        nid = self._require(change.node)
        was_in_mis = self._state[nid] == CODE_M
        if change.graceful and was_in_mis:
            # Graceful deletion: the node keeps relaying until the system is
            # stable.  It seeds the repair itself, with its final output
            # forced to non-MIS, and only then retires.
            self._retiring[nid] = 1
            seeds = self._seed_retirement(nid, metrics)
            self._run_until_stable(metrics, seeds)
            self._detach_node(nid, change.node)
        elif change.graceful:
            # A non-MIS node retires silently: no neighbor's invariant changes.
            self._detach_node(nid, change.node)
            self._run_until_stable(metrics, [])
        else:
            # Abrupt deletion: neighbors merely observe that the node is gone.
            former_neighbors = list(self._adj[nid])
            self._detach_node(nid, change.node)
            seeds: List[FastMessage] = []
            if was_in_mis:
                # Section 4.2: every former neighbor whose invariant broke
                # (it was non-MIS and its only earlier MIS neighbor was the
                # deleted node) switches to C in the first round.
                former_neighbors.sort(key=self._keys.__getitem__)
                for other in former_neighbors:
                    seeds.extend(self._maybe_seed_violation(other, metrics))
            self._run_until_stable(metrics, seeds)
        self._finalize(metrics)
        self._release(nid)
        return metrics

    def _detach_node(self, nid: int, label: Node) -> None:
        super()._detach_node(nid, label)
        self._transient.discard(nid)

    # ------------------------------------------------------------------
    # Protocol hooks (implemented by subclasses, at id level)
    # ------------------------------------------------------------------
    def _node_step(
        self, nid: int, inbox: Sequence[FastMessage], round_no: int
    ) -> Tuple[List[FastMessage], bool]:
        """Run one round of the protocol state machine at one node."""
        raise NotImplementedError

    def _decide(
        self,
        nid: int,
        has_inbox: bool,
        absorbed: Tuple[List[FastMessage], bool, bool],
        round_no: int,
        guard_mask: Optional[int],
    ) -> Tuple[List[FastMessage], bool]:
        """The decision half of :meth:`_node_step`, after the inbox absorb.

        ``absorbed`` is the :meth:`_handle_inbox` result for this node;
        ``guard_mask`` is the kernel's guard bitmask or ``None`` (evaluate
        the guards serially).  ``_node_step`` is absorb followed by decide.
        """
        raise NotImplementedError

    def _seed_violation(self, nid: int, metrics: ChangeMetrics) -> List[FastMessage]:
        """Reaction of a node that locally detects an MIS-invariant violation."""
        raise NotImplementedError

    def _seed_retirement(self, nid: int, metrics: ChangeMetrics) -> List[FastMessage]:
        """Reaction of a gracefully deleted MIS node (it must hand off its role)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Simulator core
    # ------------------------------------------------------------------
    def _run_until_stable(
        self, metrics: ChangeMetrics, seed_messages: List[FastMessage]
    ) -> None:
        """Run synchronous rounds until the system is stable again.

        Identical round semantics to the dict simulator, but each round only
        visits the *active* set -- inbox receivers plus nodes in transient
        states -- instead of sweeping every runtime.  A node outside that set
        provably does nothing in both protocol state machines, so the visit
        order (ascending ``pi`` within the active set) and every observable
        outcome coincide with the full sorted sweep.

        With a pool attached (:meth:`attach_parallel`), rounds with a large
        active set split the serial per-node step into the three phases it
        already factors into -- absorb every inbox (writes only the
        receiver's own knowledge rows), evaluate every guard (pure reads of
        own rows plus static priorities; the parallel part), decide in
        ascending ``pi`` (writes only the decider's own state) -- which is
        observably identical to the interleaved sweep because within a
        round no node ever reads another node's live state, only what it
        *heard* in earlier rounds.
        """
        self._last_round_log = []
        pool = self._pool
        self._pool_stale = True  # the change handlers may have edited topology
        labels = self._labels
        pending = list(seed_messages)
        if pending:
            self._account_broadcasts(metrics, pending)
            metrics.rounds = max(metrics.rounds, 1)
            if self._round_logging:
                seed_record = RoundRecord(1)
                seed_record.broadcasts = [
                    (labels[sender], _KIND_VALUES[kind], _STATE_VALUES[state_code])
                    for sender, kind, state_code, _ in pending
                ]
                self._last_round_log.append(seed_record)
        last_active = metrics.rounds
        round_no = 1
        cap = self.ROUND_CAP_FACTOR * max(1, len(self._id_of)) + self.ROUND_CAP_SLACK
        sort_key = self._keys.__getitem__
        while True:
            round_no += 1
            if round_no > cap:
                raise ProtocolError(
                    f"protocol did not stabilize within {cap} rounds "
                    f"(change kind {metrics.change_kind})"
                )
            inboxes, delivered = self._deliver(pending)
            pending = []
            activity = False
            record = RoundRecord(round_no) if self._round_logging else None
            if record is not None:
                record.messages_delivered = delivered
            active = set(inboxes)
            active.update(self._transient)
            active_sorted = sorted(active, key=sort_key)
            absorbed = None
            masks = None
            if pool is not None:
                self._pool_dirty.update(inboxes)
                if pool.engaged(len(active_sorted)):
                    absorbed = [
                        self._handle_inbox(nid, inboxes.get(nid, ()), round_no)
                        for nid in active_sorted
                    ]
                    masks = self._parallel_guards(active_sorted)
            for index, nid in enumerate(active_sorted):
                if absorbed is None:
                    outgoing, changed = self._node_step(
                        nid, inboxes.get(nid, ()), round_no
                    )
                else:
                    outgoing, changed = self._decide(
                        nid,
                        nid in inboxes,
                        absorbed[index],
                        round_no,
                        masks[index] if masks is not None else None,
                    )
                if outgoing:
                    pending.extend(outgoing)
                    if record is not None:
                        record.broadcasts.extend(
                            (labels[sender], _KIND_VALUES[kind], _STATE_VALUES[state_code])
                            for sender, kind, state_code, _ in outgoing
                        )
                    activity = True
                if changed:
                    metrics.state_changes += 1
                    if record is not None:
                        record.state_changes += 1
                    activity = True
            if pending:
                self._account_broadcasts(metrics, pending)
            if activity:
                last_active = round_no
            if record is not None and (activity or record.messages_delivered):
                self._last_round_log.append(record)
            if not pending and not activity and not self._transient:
                break
        metrics.rounds = max(metrics.rounds, last_active)

    def _deliver(
        self, messages: List[FastMessage]
    ) -> Tuple[Dict[int, List[FastMessage]], int]:
        """Deliver each broadcast to all *current* neighbors of its sender."""
        inboxes: Dict[int, List[FastMessage]] = {}
        delivered = 0
        alive = self._alive
        adj = self._adj
        for message in messages:
            sender = message[0]
            if not alive[sender]:
                continue
            for receiver in adj[sender]:
                inbox = inboxes.get(receiver)
                if inbox is None:
                    inbox = inboxes[receiver] = []
                inbox.append(message)
                delivered += 1
        return inboxes, delivered

    def _account_broadcasts(self, metrics: ChangeMetrics, messages: List[FastMessage]) -> None:
        bound = max(2, len(self._id_of))
        id_bits = id_message_bits(bound)
        state_bits = state_message_bits()
        for message in messages:
            metrics.broadcasts += 1
            metrics.bits += id_bits if message[1] == _KIND_ID else state_bits

    # ------------------------------------------------------------------
    # Shared helpers for change handlers and protocols
    # ------------------------------------------------------------------
    def _id_broadcast(self, nid: int, requests_introduction: bool = True) -> FastMessage:
        return (nid, _KIND_ID, self._state[nid], requests_introduction)

    def _state_broadcast(self, nid: int) -> FastMessage:
        return (nid, _KIND_STATE, self._state[nid], False)

    def _maybe_seed_violation(self, nid: int, metrics: ChangeMetrics) -> List[FastMessage]:
        """Check the MIS invariant from local knowledge; seed the repair if broken."""
        if self._state[nid] > CODE_M_BAR:
            return []
        should_be_in_mis = self._no_earlier_neighbor_in_mis(nid)
        if should_be_in_mis == (self._state[nid] == CODE_M):
            return []
        return self._seed_violation(nid, metrics)

    def _handle_inbox(
        self, nid: int, inbox: Sequence[FastMessage], round_no: int
    ) -> Tuple[List[FastMessage], bool, bool]:
        """Shared inbox processing: update knowledge, handle introductions.

        Returns ``(introduction broadcasts, learned a previously unknown
        neighbor key, received C from a known earlier neighbor)``.  The C
        trigger is evaluated against the keys known *after* the whole inbox
        was absorbed, exactly like the dict protocol's two-pass handling.
        """
        del round_no
        outgoing: List[FastMessage] = []
        learned_new_key = False
        row = self._adj[nid]
        nstate = self._nstate[nid]
        nkey = self._nkey[nid]
        positions: List[Tuple[int, int, int]] = []  # (sender, position, state_code)
        for sender, kind, state_code, requests_introduction in inbox:
            try:
                position = row.index(sender)
            except ValueError:
                # Stale message from a node that is no longer a neighbor.
                continue
            key_was_known = nkey[position]
            if kind == _KIND_ID:
                nkey[position] = 1
            nstate[position] = state_code
            positions.append((sender, position, state_code))
            if kind == _KIND_ID and not key_was_known:
                learned_new_key = True
                if requests_introduction and nid not in self._introduced:
                    outgoing.append(self._id_broadcast(nid))
                    self._introduced.add(nid)
        c_trigger = False
        prio, keys = self._prio, self._keys
        p, key = prio[nid], keys[nid]
        for sender, position, state_code in positions:
            if state_code != CODE_C or not nkey[position]:
                continue
            if prio[sender] < p or (prio[sender] == p and keys[sender] < key):
                c_trigger = True
                break
        return outgoing, learned_new_key, c_trigger

    def _enter_transient(self, nid: int, code: int, round_no: int) -> None:
        self._set_state(nid, code)
        if code == CODE_C:
            self._entered_c[nid] = round_no
        self._transient.add(nid)

    def _settle_output(self, nid: int, code: int) -> None:
        self._set_state(nid, code)
        self._transient.discard(nid)


class FastBufferedMISNetwork(FastSynchronousMISNetwork):
    """Array-backed Algorithm 2 (states M, M_BAR, C, R; the paper's protocol).

    Observably identical to
    :class:`~repro.distributed.protocol_mis.BufferedMISNetwork` -- same
    metrics, traces and outputs under the same seed -- at a per-change cost
    proportional to the repair wave instead of the network size.

    Examples
    --------
    >>> from repro.graph.generators import erdos_renyi_graph
    >>> network = FastBufferedMISNetwork(seed=3, initial_graph=erdos_renyi_graph(20, 0.2, seed=1))
    >>> network.verify()
    >>> from repro.workloads.changes import EdgeDeletion
    >>> edge = network.graph.edges()[0]
    >>> metrics = network.apply(EdgeDeletion(*edge))
    >>> metrics.broadcasts <= 3 * network.graph.num_nodes()
    True
    """

    PROTOCOL = "buffered"

    # ------------------------------------------------------------------
    # Seeding hooks
    # ------------------------------------------------------------------
    def _seed_violation(self, nid: int, metrics: ChangeMetrics) -> List[FastMessage]:
        self._enter_transient(nid, CODE_C, round_no=1)
        metrics.state_changes += 1
        return [self._state_broadcast(nid)]

    def _seed_retirement(self, nid: int, metrics: ChangeMetrics) -> List[FastMessage]:
        # A gracefully deleted MIS node hands off its role by entering C; its
        # final output is forced to non-MIS by the ``retiring`` flag.
        self._enter_transient(nid, CODE_C, round_no=1)
        metrics.state_changes += 1
        return [self._state_broadcast(nid)]

    # ------------------------------------------------------------------
    # The per-round state machine (rules 1-4 of Algorithm 2)
    # ------------------------------------------------------------------
    def _node_step(
        self, nid: int, inbox: Sequence[FastMessage], round_no: int
    ) -> Tuple[List[FastMessage], bool]:
        absorbed = self._handle_inbox(nid, inbox, round_no)
        return self._decide(nid, bool(inbox), absorbed, round_no, None)

    def _decide(
        self,
        nid: int,
        has_inbox: bool,
        absorbed: Tuple[List[FastMessage], bool, bool],
        round_no: int,
        guard_mask: Optional[int],
    ) -> Tuple[List[FastMessage], bool]:
        del has_inbox
        outgoing, learned_new_key, c_trigger = absorbed
        changed = False
        state_code = self._state[nid]

        if state_code <= CODE_M_BAR and not self._retiring[nid]:
            if c_trigger and (
                state_code == CODE_M or self._g_no_earlier_mis(nid, guard_mask)
            ):
                # Rules 1 and 2: join the repair wave (a non-MIS node only if
                # no other earlier neighbor is still in M).
                self._enter_transient(nid, CODE_C, round_no)
                changed = True
                outgoing.append(self._state_broadcast(nid))
            elif learned_new_key and self._g_knows_all_keys(nid, guard_mask):
                # A new neighbor was discovered (edge or node insertion): the
                # node re-checks the MIS invariant from local knowledge and
                # starts the repair if it broke (this is v*'s detection step).
                if self._g_no_earlier_mis(nid, guard_mask) != (state_code == CODE_M):
                    self._enter_transient(nid, CODE_C, round_no)
                    changed = True
                    outgoing.append(self._state_broadcast(nid))
        elif state_code == CODE_C:
            entered = self._entered_c[nid]
            if (
                entered >= 0
                and round_no - entered >= 2
                and self._g_no_later_c(nid, guard_mask)
            ):
                self._enter_transient(nid, CODE_R, round_no)
                changed = True
                outgoing.append(self._state_broadcast(nid))
        elif state_code == CODE_R:
            if self._g_earlier_settled(nid, guard_mask):
                if self._retiring[nid]:
                    self._settle_output(nid, CODE_M_BAR)
                elif self._g_no_earlier_mis(nid, guard_mask):
                    self._settle_output(nid, CODE_M)
                else:
                    self._settle_output(nid, CODE_M_BAR)
                changed = True
                outgoing.append(self._state_broadcast(nid))
        return outgoing, changed


class FastDirectMISNetwork(FastSynchronousMISNetwork):
    """Array-backed direct template protocol (Corollary 6; states M / M_BAR).

    Observably identical to
    :class:`~repro.distributed.protocol_direct.DirectMISNetwork`.
    """

    PROTOCOL = "direct"

    # ------------------------------------------------------------------
    # Seeding hooks
    # ------------------------------------------------------------------
    def _seed_violation(self, nid: int, metrics: ChangeMetrics) -> List[FastMessage]:
        code = CODE_M if self._no_earlier_neighbor_in_mis(nid) else CODE_M_BAR
        self._settle_output(nid, code)
        metrics.state_changes += 1
        return [self._state_broadcast(nid)]

    def _seed_retirement(self, nid: int, metrics: ChangeMetrics) -> List[FastMessage]:
        # A gracefully deleted MIS node simply announces that it leaves the
        # MIS; its neighbors react as if it had been deleted already.
        self._settle_output(nid, CODE_M_BAR)
        metrics.state_changes += 1
        return [self._state_broadcast(nid)]

    # ------------------------------------------------------------------
    # The per-round behavior
    # ------------------------------------------------------------------
    def _node_step(
        self, nid: int, inbox: Sequence[FastMessage], round_no: int
    ) -> Tuple[List[FastMessage], bool]:
        absorbed = self._handle_inbox(nid, inbox, round_no)
        return self._decide(nid, bool(inbox), absorbed, round_no, None)

    def _decide(
        self,
        nid: int,
        has_inbox: bool,
        absorbed: Tuple[List[FastMessage], bool, bool],
        round_no: int,
        guard_mask: Optional[int],
    ) -> Tuple[List[FastMessage], bool]:
        del round_no
        outgoing, learned_new_key, _ = absorbed
        changed = False
        if (has_inbox or learned_new_key) and self._g_knows_all_keys(nid, guard_mask):
            if self._retiring[nid]:
                desired = CODE_M_BAR
            elif self._g_no_earlier_mis(nid, guard_mask):
                desired = CODE_M
            else:
                desired = CODE_M_BAR
            if desired != self._state[nid]:
                self._settle_output(nid, desired)
                changed = True
                outgoing.append(self._state_broadcast(nid))
        return outgoing, changed


class FastAsyncDirectMISNetwork(FastNetworkCore):
    """Array-backed twin of :class:`~repro.distributed.async_network.AsyncDirectMISNetwork`.

    Event-driven execution of the direct template protocol under adversarial
    message delays, over the interned arrays.  In the asynchronous model the
    topology-change notifications include the new neighbors' IDs, so only the
    per-directed-edge *state* knowledge lags behind broadcasts; keys are
    always known.

    For differential comparison against the dict twin, use a
    *channel-deterministic* scheduler (``FixedDelayScheduler`` or
    ``AdversarialDelayScheduler``): the default ``RandomDelayScheduler``
    draws delays from one private stream whose assignment to receivers
    depends on neighbor iteration order, which an interned core cannot (and
    should not) reproduce byte-for-byte.  Same-*backend* checkpoint/resume
    is exact for every scheduler kind, though: snapshots carry the stream
    position (:attr:`~repro.distributed.state.NetworkSnapshot.scheduler_state`).
    """

    PROTOCOL = "async-direct"
    # Shared with the dict twin by reference (same cap, can never drift).
    MAX_EVENTS_FACTOR = AsyncDirectMISNetwork.MAX_EVENTS_FACTOR

    def __init__(
        self,
        seed: int = 0,
        initial_graph: Optional[DynamicGraph] = None,
        scheduler: Optional[DelayScheduler] = None,
        priorities: Optional[PriorityAssigner] = None,
    ) -> None:
        if scheduler is None:
            # The simulator's own built-in default delay policy; spec-driven
            # runs pass scheduler= through create_network / create_scheduler.
            scheduler = RandomDelayScheduler(seed + 1)  # repro-lint: registry-discipline -- internal default
        self._scheduler = scheduler
        self._sequence = EventSequence()
        super().__init__(seed=seed, initial_graph=initial_graph, priorities=priorities)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def _scheduler_cursor(self) -> int:
        return self._sequence.value

    def _scheduler_state(self) -> Optional[Tuple]:
        return self._scheduler.getstate()

    def restore(self, snapshot: NetworkSnapshot) -> None:
        super().restore(snapshot)
        self._sequence = EventSequence(snapshot.scheduler_cursor)
        self._scheduler.setstate(snapshot.scheduler_state)

    # ------------------------------------------------------------------
    # Topology-change API
    # ------------------------------------------------------------------
    def apply(self, change: TopologyChange) -> ChangeMetrics:
        """Apply one topology change and run the event loop to quiescence."""
        validate_change(self.graph, change)
        self._begin_change()
        if isinstance(change, EdgeInsertion):
            metrics = self._apply_edge_insertion(change)
        elif isinstance(change, EdgeDeletion):
            metrics = self._apply_edge_deletion(change)
        elif isinstance(change, (NodeInsertion, NodeUnmuting)):
            metrics = self._apply_node_insertion(change)
        elif isinstance(change, NodeDeletion):
            metrics = self._apply_node_deletion(change)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown change type: {change!r}")
        self._aggregator.add(metrics)
        return metrics

    def apply_sequence(self, changes: Iterable[TopologyChange]) -> List[ChangeMetrics]:
        """Apply a whole change sequence."""
        return [self.apply(change) for change in changes]

    # ------------------------------------------------------------------
    # Change handlers (model-level notifications include IDs)
    # ------------------------------------------------------------------
    def _connect(self, iu: int, iv: int) -> None:
        """Model-level notification of a new adjacency, including IDs and states."""
        self._add_half_edge(iu, iv, known_state=self._state[iv], known_key=1)
        self._add_half_edge(iv, iu, known_state=self._state[iu], known_key=1)

    def _apply_edge_insertion(self, change: EdgeInsertion) -> ChangeMetrics:
        metrics = ChangeMetrics("edge_insertion")
        iu, iv = self._require(change.u), self._require(change.v)
        self._connect(iu, iv)
        self._num_edges += 1
        later = iu if self._earlier(iv, iu) else iv
        seeds = self._evaluate_and_flip(later, metrics)
        self._run_events(seeds, metrics)
        self._finalize(metrics)
        return metrics

    def _apply_edge_deletion(self, change: EdgeDeletion) -> ChangeMetrics:
        metrics = ChangeMetrics("edge_deletion")
        iu, iv = self._require(change.u), self._require(change.v)
        later = iu if self._earlier(iv, iu) else iv
        self._remove_half_edge(iu, iv)
        self._remove_half_edge(iv, iu)
        self._num_edges -= 1
        seeds = self._evaluate_and_flip(later, metrics)
        self._run_events(seeds, metrics)
        self._finalize(metrics)
        return metrics

    def _apply_node_insertion(self, change) -> ChangeMetrics:
        metrics = ChangeMetrics(change.kind)
        neighbor_ids = [self._id_of[other] for other in change.neighbors]
        nid = self._intern(change.node)
        for oid in neighbor_ids:
            self._connect(nid, oid)
        self._num_edges += len(neighbor_ids)
        seeds = self._evaluate_and_flip(nid, metrics)
        self._run_events(seeds, metrics)
        self._finalize(metrics)
        return metrics

    def _apply_node_deletion(self, change: NodeDeletion) -> ChangeMetrics:
        metrics = ChangeMetrics("node_deletion")
        nid = self._require(change.node)
        was_in_mis = self._state[nid] == CODE_M
        former_neighbors = list(self._adj[nid])
        self._detach_node(nid, change.node)
        seeds: List[Tuple[int, int, int]] = []
        if was_in_mis:
            former_neighbors.sort(key=self._keys.__getitem__)
            for other in former_neighbors:
                seeds.extend(self._evaluate_and_flip(other, metrics))
        self._run_events(seeds, metrics)
        self._finalize(metrics)
        self._release(nid)
        return metrics

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _run_events(
        self, seed_broadcasts: List[Tuple[int, int, int]], metrics: ChangeMetrics
    ) -> None:
        """Run the discrete-event loop until no message is in flight.

        ``seed_broadcasts`` is a list of ``(sender_id, state_code, depth)``
        broadcast requests produced by the change handler.
        """
        queue: List[Tuple[float, int, int, int, int, int]] = []
        channel_clock: Dict[Tuple[int, int], float] = {}
        max_depth = 0
        processed = 0
        limit = self.MAX_EVENTS_FACTOR * max(1, len(self._id_of)) ** 2 + 100
        alive, adj, labels = self._alive, self._adj, self._labels
        scheduler, sequence = self._scheduler, self._sequence

        def broadcast(sender: int, state_code: int, depth: int, now: float) -> None:
            nonlocal max_depth
            if not alive[sender]:
                return
            metrics.broadcasts += 1
            metrics.bits += 2
            max_depth = max(max_depth, depth)
            sender_label = labels[sender]
            for receiver in adj[sender]:
                delay = scheduler.delay(sender_label, labels[receiver], next(sequence))
                deliver_at = now + max(delay, 1e-9)
                channel = (sender, receiver)
                deliver_at = max(deliver_at, channel_clock.get(channel, 0.0) + 1e-9)
                channel_clock[channel] = deliver_at
                heapq.heappush(
                    queue, (deliver_at, next(sequence), sender, receiver, state_code, depth)
                )

        for sender, state_code, depth in seed_broadcasts:
            broadcast(sender, state_code, depth, now=0.0)

        while queue:
            processed += 1
            if processed > limit:
                raise RuntimeError("asynchronous execution did not quiesce")
            deliver_at, _, sender, receiver, state_code, depth = heapq.heappop(queue)
            if not alive[receiver]:
                continue
            try:
                position = adj[receiver].index(sender)
            except ValueError:
                continue
            self._nstate[receiver][position] = state_code
            flips = self._evaluate_and_flip(receiver, metrics, depth=depth + 1)
            for flip_sender, flip_state, flip_depth in flips:
                broadcast(flip_sender, flip_state, flip_depth, now=deliver_at)
        metrics.async_causal_depth = max_depth
        metrics.rounds = max_depth

    def _evaluate_and_flip(
        self, nid: int, metrics: ChangeMetrics, depth: int = 1
    ) -> List[Tuple[int, int, int]]:
        """Re-evaluate the MIS invariant at a node; flip and request a broadcast if needed."""
        desired = CODE_M if self._no_earlier_neighbor_in_mis(nid) else CODE_M_BAR
        if desired == self._state[nid]:
            return []
        self._set_state(nid, desired)
        metrics.state_changes += 1
        return [(nid, desired, depth)]
