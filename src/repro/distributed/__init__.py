"""Distributed simulation of the paper's dynamic model (Section 2 and 4).

The subpackage contains

* the message and metric plumbing shared by every protocol
  (:mod:`repro.distributed.message`, :mod:`repro.distributed.metrics`),
* the per-node runtime state holding exactly the knowledge a node is allowed
  to have -- its own random ID, its neighbors, and the last state/ID it heard
  from each neighbor (:mod:`repro.distributed.node`),
* the synchronous round-based broadcast simulator and the shared
  topology-change controller (:mod:`repro.distributed.network`),
* **Algorithm 2**, the constant-broadcast protocol with states M, M-bar, C, R
  (:mod:`repro.distributed.protocol_mis`),
* the **direct template implementation** of Corollary 6 -- one adjustment and
  one round in expectation (:mod:`repro.distributed.protocol_direct`),
* an asynchronous event-driven execution of the direct protocol with
  adversarial/random message delays (:mod:`repro.distributed.async_network`,
  :mod:`repro.distributed.scheduler`),
* the id-interned flat-array state core running the same three protocols at
  protocol-benchmark scale (:mod:`repro.distributed.fast_network`), selected
  through the network-backend registry
  (:mod:`repro.distributed.network_api`) or by passing ``network="fast"`` to
  any simulator constructor.
"""

from repro.distributed.message import Message, MessageKind, id_message_bits, state_message_bits
from repro.distributed.metrics import ChangeMetrics, MetricsAggregator
from repro.distributed.node import NodeRuntime, NodeState
from repro.distributed.protocol_direct import DirectMISNetwork
from repro.distributed.protocol_mis import BufferedMISNetwork
from repro.distributed.async_network import AsyncDirectMISNetwork
from repro.distributed.fast_network import (
    FastAsyncDirectMISNetwork,
    FastBufferedMISNetwork,
    FastDirectMISNetwork,
)
from repro.distributed.network_api import (
    NETWORK_NAMES,
    available_networks,
    create_network,
    register_network,
    unregister_network,
)
from repro.distributed.scheduler import (
    AdversarialDelayScheduler,
    FixedDelayScheduler,
    RandomDelayScheduler,
)

__all__ = [
    "Message",
    "MessageKind",
    "state_message_bits",
    "id_message_bits",
    "ChangeMetrics",
    "MetricsAggregator",
    "NodeRuntime",
    "NodeState",
    "BufferedMISNetwork",
    "DirectMISNetwork",
    "AsyncDirectMISNetwork",
    "FastBufferedMISNetwork",
    "FastDirectMISNetwork",
    "FastAsyncDirectMISNetwork",
    "NETWORK_NAMES",
    "available_networks",
    "create_network",
    "register_network",
    "unregister_network",
    "RandomDelayScheduler",
    "FixedDelayScheduler",
    "AdversarialDelayScheduler",
]
