"""Direct distributed implementation of the template (Corollary 6).

Every node keeps only the two output states.  Whenever it learns something
new -- the state change of a neighbor, or the random ID of a newly attached
neighbor -- it recomputes the MIS invariant from its local knowledge and, if
its output must change, flips it and broadcasts the new state.

This is the implementation whose *round* complexity is a single round in
expectation (the propagation depth equals the number of levels of the
influenced set, and Theorem 1 gives E[|S|] <= 1), but whose *broadcast*
complexity can reach Theta(|S|^2) because a node may flip several times
(the paper's ``u_2`` example).  Experiment A1 contrasts it against Algorithm 2
(:class:`~repro.distributed.protocol_mis.BufferedMISNetwork`), which trades a
slightly larger constant number of rounds for O(1) broadcasts.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.distributed.message import Message
from repro.distributed.metrics import ChangeMetrics
from repro.distributed.network import SynchronousMISNetwork
from repro.distributed.node import NodeRuntime, NodeState


class DirectMISNetwork(SynchronousMISNetwork):
    """Synchronous network running the direct (single-round) template protocol.

    Examples
    --------
    >>> from repro.graph.generators import star_graph
    >>> network = DirectMISNetwork(seed=5, initial_graph=star_graph(10))
    >>> network.verify()
    >>> from repro.workloads.changes import NodeDeletion
    >>> metrics = network.apply(NodeDeletion(0, graceful=False))
    >>> network.verify()

    Passing ``network="fast"`` to the constructor returns the id-interned
    array-backed twin
    (:class:`~repro.distributed.fast_network.FastDirectMISNetwork`).
    """

    PROTOCOL = "direct"

    # ------------------------------------------------------------------
    # Seeding hooks
    # ------------------------------------------------------------------
    def _seed_violation(self, runtime: NodeRuntime, metrics: ChangeMetrics) -> List[Message]:
        runtime.state = (
            NodeState.M if runtime.no_earlier_neighbor_in_mis() else NodeState.M_BAR
        )
        metrics.state_changes += 1
        return [self._state_broadcast(runtime.node_id, round_sent=1)]

    def _seed_retirement(self, runtime: NodeRuntime, metrics: ChangeMetrics) -> List[Message]:
        # A gracefully deleted MIS node simply announces that it leaves the
        # MIS; its neighbors react as if it had been deleted already.
        runtime.state = NodeState.M_BAR
        metrics.state_changes += 1
        return [self._state_broadcast(runtime.node_id, round_sent=1)]

    # ------------------------------------------------------------------
    # The per-round behavior
    # ------------------------------------------------------------------
    def _node_step(
        self, runtime: NodeRuntime, inbox: List[Message], round_no: int
    ) -> Tuple[List[Message], bool]:
        outgoing, learned_new_key = self._handle_inbox(runtime, inbox, round_no)
        changed = False
        if (inbox or learned_new_key) and self._knows_all_neighbor_keys(runtime):
            if runtime.retiring:
                desired = NodeState.M_BAR
            elif runtime.no_earlier_neighbor_in_mis():
                desired = NodeState.M
            else:
                desired = NodeState.M_BAR
            if desired is not runtime.state:
                runtime.state = desired
                changed = True
                outgoing.append(self._state_broadcast(runtime.node_id, round_sent=round_no))
        return outgoing, changed

    @staticmethod
    def _knows_all_neighbor_keys(runtime: NodeRuntime) -> bool:
        return all(other in runtime.neighbor_keys for other in runtime.neighbors)
