"""The network-backend registry for the distributed simulators.

The distributed subsystem ships two interchangeable *state cores*: the
paper-shaped dict/set runtimes (:mod:`repro.distributed.network` and
friends) and the id-interned flat-array core
(:mod:`repro.distributed.fast_network`).  Both run the same three protocols
-- ``"buffered"`` (Algorithm 2), ``"direct"`` (the direct template
implementation) and ``"async-direct"`` (the event-driven asynchronous
execution) -- and are observably identical under the same seed, which the
protocol differential harness
(:func:`repro.testing.protocol_differential.replay_protocol_differential`)
machine-checks.

This module is the registry tying them together, mirroring the engine
registry (:mod:`repro.core.engine_api`):

* :func:`register_network` registers a backend name with one factory per
  protocol; third-party cores plug in without touching any simulator module;
* :func:`create_network` builds a simulator from ``(protocol, network)``;
* the simulator classes' constructors dispatch through
  :func:`resolve_network` when called with ``network="..."``, so existing
  call sites (CLI, benchmarks, tests) select a core with zero edits:
  ``BufferedMISNetwork(seed=3, network="fast")`` returns the array-backed
  twin.

``NETWORK_NAMES`` is a live view of the registered backend names, used by
the CLI for its ``--network`` choices.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence, Tuple

from repro.registry import LiveNames, Registry, UnknownNameError

#: Signature of a registered backend factory: the simulator constructor
#: keyword arguments (``seed``, ``initial_graph``, ``priorities`` and, for
#: the asynchronous protocol, ``scheduler``), returning a ready simulator.
NetworkFactory = Callable[..., object]

#: The protocols every complete backend provides.
PROTOCOL_NAMES = ("buffered", "direct", "async-direct")


class UnknownNetworkError(UnknownNameError):
    """A network or protocol name that is not registered (with a did-you-mean hint)."""

    def __init__(self, kind: str, name: str, known: Sequence[str]) -> None:
        super().__init__(kind, name, known)


def _check_protocol_table(name: str, protocols: Mapping[str, NetworkFactory]) -> None:
    if not protocols:
        raise ValueError(f"network {name!r} must register at least one protocol")
    for protocol, factory in protocols.items():
        if not callable(factory):
            raise TypeError(
                f"factory for network {name!r} protocol {protocol!r} must be "
                f"callable, got {factory!r}"
            )


_REGISTRY = Registry(
    "network",
    error=lambda name, known: UnknownNetworkError("network", name, known),
    check_value=_check_protocol_table,
)


def register_network(
    name: str, protocols: Mapping[str, NetworkFactory], overwrite: bool = False
) -> None:
    """Register a network state core under ``name``.

    ``protocols`` maps protocol names (usually a subset of
    :data:`PROTOCOL_NAMES`) to simulator factories.  A factory must accept
    the keyword arguments ``seed``, ``initial_graph`` and ``priorities``
    (plus ``scheduler`` for ``"async-direct"``) and return a ready simulator
    exposing the shared surface: ``apply`` / ``apply_sequence``, ``mis`` /
    ``states``, ``metrics``, ``graph``, ``priorities`` and
    ``verify(reference_engine=...)``.  Backends that additionally implement
    the label-keyed ``snapshot()`` / ``restore()`` pair of
    :mod:`repro.distributed.state` (all built-ins do) gain session
    checkpointing and cross-backend resume for free
    (:meth:`repro.scenario.session.Session.checkpoint`).

    Re-registering an existing name raises unless ``overwrite=True`` (guards
    against accidental shadowing of the built-in cores).
    """
    if protocols is not None and not isinstance(protocols, Mapping):
        raise TypeError(
            f"network {name!r} needs a mapping of protocol -> factory, got {protocols!r}"
        )
    _REGISTRY.register(
        name, dict(protocols) if protocols else protocols, overwrite=overwrite
    )


def unregister_network(name: str) -> None:
    """Remove ``name`` from the registry (no-op if absent; mainly for tests)."""
    _REGISTRY.unregister(name)


def available_networks() -> Tuple[str, ...]:
    """The registered backend names, built-ins first, in registration order."""
    return _REGISTRY.names()


def network_protocols(name: str) -> Tuple[str, ...]:
    """The protocol names backend ``name`` provides."""
    return tuple(_REGISTRY.get(name))


def resolve_network(name: str, protocol: str) -> NetworkFactory:
    """The factory for ``(network name, protocol)``; raises with a hint otherwise."""
    protocols = _REGISTRY.get(name)
    try:
        return protocols[protocol]
    except KeyError:
        raise UnknownNetworkError("protocol", protocol, tuple(protocols)) from None


def create_network(protocol: str = "buffered", network: str = "dict", **kwargs):
    """Build a distributed simulator from a ``(protocol, network)`` pair.

    ``kwargs`` are passed to the resolved factory (``seed``,
    ``initial_graph``, ``priorities``, and ``scheduler`` for the
    asynchronous protocol).
    """
    return resolve_network(network, protocol)(**kwargs)


#: Live view of the registered backend names (kept in sync with the registry).
NETWORK_NAMES = LiveNames(_REGISTRY)


# ----------------------------------------------------------------------
# Built-in backends (lazy factories -- no circular imports)
# ----------------------------------------------------------------------
def _dict_buffered(*args, **kwargs):
    from repro.distributed.protocol_mis import BufferedMISNetwork

    return BufferedMISNetwork(*args, **kwargs)


def _dict_direct(*args, **kwargs):
    from repro.distributed.protocol_direct import DirectMISNetwork

    return DirectMISNetwork(*args, **kwargs)


def _dict_async_direct(*args, **kwargs):
    from repro.distributed.async_network import AsyncDirectMISNetwork

    return AsyncDirectMISNetwork(*args, **kwargs)


def _fast_buffered(*args, **kwargs):
    from repro.distributed.fast_network import FastBufferedMISNetwork

    return FastBufferedMISNetwork(*args, **kwargs)


def _fast_direct(*args, **kwargs):
    from repro.distributed.fast_network import FastDirectMISNetwork

    return FastDirectMISNetwork(*args, **kwargs)


def _fast_async_direct(*args, **kwargs):
    from repro.distributed.fast_network import FastAsyncDirectMISNetwork

    return FastAsyncDirectMISNetwork(*args, **kwargs)


register_network(
    "dict",
    {"buffered": _dict_buffered, "direct": _dict_direct, "async-direct": _dict_async_direct},
)
register_network(
    "fast",
    {"buffered": _fast_buffered, "direct": _fast_direct, "async-direct": _fast_async_direct},
)
