"""Knowledge-level snapshots of the distributed simulators.

The paper's maintainers carry all of their correctness in *local knowledge*:
each node knows its own random ID and output, its current neighbor set, and
the last ID/state it heard from each neighbor.  A :class:`NetworkSnapshot`
captures exactly that -- plus the ground-truth topology, the priority keys,
the per-change metrics collected so far and (for the asynchronous
simulators) the event-sequence cursor -- keyed by node *labels*, never by
backend internals.

Because the snapshot is label-keyed, any registered network backend can
restore a snapshot taken by any other: a checkpoint captured on the
dict/set simulators resumes on the id-interned
:mod:`~repro.distributed.fast_network` core and vice versa, and the resumed
run is differential-equal (outputs, per-change metrics, round traces) to an
uninterrupted one -- machine-checked by
:func:`repro.testing.protocol_differential.replay_resume_differential`.

Snapshots are captured between changes only.  Every simulator runs each
change to quiescence before returning, so there are never messages in
flight, transient protocol states or retiring relays at snapshot time; the
:attr:`NetworkSnapshot.pending` field exists to make that explicit in the
schema (it is always empty, and :func:`check_quiescent` enforces it).

This module also hosts the shared snapshot/restore plumbing of the two
dict/set simulators (:func:`snapshot_from_runtimes` /
:func:`runtimes_from_snapshot`); the fast core implements the same pair over
its interned arrays in :mod:`repro.distributed.fast_network`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

from repro.distributed.metrics import ChangeMetrics
from repro.distributed.node import NodeRuntime, NodeState
from repro.graph.dynamic_graph import DynamicGraph

Node = Hashable

#: Directed per-edge knowledge: what ``u`` knows about neighbor ``v`` --
#: the last protocol-state value heard (``None`` if never) and whether
#: ``v``'s random ID (priority key) is known to ``u``.
KnowledgeEntry = Tuple[Optional[str], bool]


class NetworkStateError(RuntimeError):
    """A snapshot could not be captured or restored (wrong protocol, not quiescent)."""


@dataclass(frozen=True)
class NetworkSnapshot:
    """Frozen, label-keyed copy of one distributed simulator's observable state.

    Attributes
    ----------
    protocol:
        Which protocol produced the snapshot (``"buffered"`` / ``"direct"`` /
        ``"async-direct"``).  A snapshot restores only into a simulator of the
        same protocol -- the *backend* (dict/fast) is free.
    nodes / edges:
        The ground-truth topology, by label.
    states:
        Protocol-state value per node.  Between changes every node is in an
        output state (``"M"`` / ``"M_BAR"``).
    priority_keys:
        The full random order ``pi`` restricted to live nodes; restored
        verbatim so the order is exact even mid-way through a workload.
    knowledge:
        Directed per-edge local knowledge (see :data:`KnowledgeEntry`).  At
        quiescence this equals "key known, state = neighbor's current
        output" -- the stability invariant the conformance suite asserts --
        but it is captured explicitly so restore never has to *derive* what
        a node knows.
    pending:
        In-flight messages / queued events.  Always empty: snapshots are
        captured between changes only (kept in the schema to make the
        quiescence contract explicit).
    scheduler_cursor:
        How many event-sequence values the asynchronous event loop consumed
        so far (0 for the synchronous protocols); a resumed simulator
        continues the sequence from here.
    metrics:
        Deep copies of the per-change :class:`ChangeMetrics` records
        collected so far, so a resumed run's aggregate summary equals an
        uninterrupted run's.
    scheduler_state:
        The delay scheduler's resumable state
        (:meth:`~repro.distributed.scheduler.DelayScheduler.getstate`):
        ``None`` for stateless channel-deterministic schedulers and for the
        synchronous protocols, the private RNG stream position for the
        ``"random"`` kind.  Restoring it makes resume exact for *every*
        scheduler kind, not just the channel-deterministic ones.
    """

    protocol: str
    nodes: Tuple[Node, ...]
    edges: Tuple[Tuple[Node, Node], ...]
    states: Dict[Node, str]
    priority_keys: Dict[Node, Tuple]
    knowledge: Dict[Tuple[Node, Node], KnowledgeEntry]
    pending: Tuple = ()
    scheduler_cursor: int = 0
    metrics: Tuple[ChangeMetrics, ...] = field(default_factory=tuple)
    scheduler_state: Optional[Tuple] = None

    @property
    def num_nodes(self) -> int:
        """Number of nodes captured in the snapshot."""
        return len(self.nodes)

    @property
    def num_changes(self) -> int:
        """Number of per-change metric records carried by the snapshot."""
        return len(self.metrics)


def check_quiescent(snapshot: NetworkSnapshot) -> None:
    """Raise :class:`NetworkStateError` unless the snapshot is a stable state."""
    if snapshot.pending:
        raise NetworkStateError(
            f"snapshot carries {len(snapshot.pending)} in-flight messages; "
            "snapshots are only valid between changes"
        )
    transient = [
        node for node, value in snapshot.states.items() if not NodeState(value).is_output
    ]
    if transient:
        raise NetworkStateError(
            f"snapshot has nodes in transient states: {transient[:5]} "
            "(snapshots are only valid between changes)"
        )


def check_restorable(snapshot: NetworkSnapshot, protocol: Optional[str]) -> None:
    """Raise unless ``snapshot`` may restore into a simulator of ``protocol``."""
    if not isinstance(snapshot, NetworkSnapshot):
        raise NetworkStateError(
            f"expected a NetworkSnapshot, got {type(snapshot).__name__} "
            "(engine snapshots restore through the sequential runner)"
        )
    if protocol is None or snapshot.protocol != protocol:
        raise NetworkStateError(
            f"snapshot was taken under protocol {snapshot.protocol!r} and cannot "
            f"restore into a {protocol!r} simulator (backends may differ, the "
            "protocol may not)"
        )
    check_quiescent(snapshot)


def copy_metric_records(records) -> Tuple[ChangeMetrics, ...]:
    """Deep-copy per-change metric records (they carry mutable adjusted-node sets)."""
    return tuple(copy.deepcopy(record) for record in records)


def quiescent_knowledge(
    edges, states: Dict[Node, str]
) -> Dict[Tuple[Node, Node], KnowledgeEntry]:
    """Derive the directed knowledge map a quiescent network must have.

    At stability every node knows every neighbor's key and *current* output:
    ``knowledge[(u, v)] == (states[v], True)`` for both directions of every
    edge.  The conformance suite asserts this invariant on live simulators
    (``check_interning_invariants(expect_stable=True)``), which is what lets
    the delta journal fold topology + states into a full snapshot without
    recording per-edge knowledge deltas.
    """
    knowledge: Dict[Tuple[Node, Node], KnowledgeEntry] = {}
    for u, v in edges:
        knowledge[(u, v)] = (states[v], True)
        knowledge[(v, u)] = (states[u], True)
    return knowledge


def scheduler_cursor_of(simulator) -> int:
    """Current event-sequence cursor of a simulator (0 for synchronous ones)."""
    sequence = getattr(simulator, "_sequence", None)
    return 0 if sequence is None else sequence.value


def scheduler_state_of(simulator) -> Optional[Tuple]:
    """Current resumable scheduler state of a simulator (``None`` if stateless)."""
    scheduler = getattr(simulator, "_scheduler", None)
    return None if scheduler is None else scheduler.getstate()


# ----------------------------------------------------------------------
# Shared plumbing of the dict/set simulators
# ----------------------------------------------------------------------
def snapshot_from_runtimes(
    protocol: Optional[str],
    graph: DynamicGraph,
    priorities,
    runtimes: Dict[Node, NodeRuntime],
    metrics_records,
    scheduler_cursor: int = 0,
    scheduler_state: Optional[Tuple] = None,
) -> NetworkSnapshot:
    """Build a :class:`NetworkSnapshot` from a dict simulator's live state."""
    if protocol is None:
        raise NetworkStateError(
            "this simulator class declares no PROTOCOL name; only concrete "
            "registered protocols can snapshot"
        )
    for node, runtime in runtimes.items():
        if not runtime.state.is_output or runtime.retiring:
            raise NetworkStateError(
                f"node {node!r} is mid-repair (state {runtime.state.value}); "
                "snapshots are only valid between changes"
            )
    knowledge: Dict[Tuple[Node, Node], KnowledgeEntry] = {}
    for node, runtime in runtimes.items():
        for neighbor, heard_state, key_known in runtime.export_knowledge():
            knowledge[(node, neighbor)] = (heard_state, key_known)
    return NetworkSnapshot(
        protocol=protocol,
        nodes=tuple(graph.nodes()),
        edges=tuple(graph.edges()),
        states={node: runtime.state.value for node, runtime in runtimes.items()},
        priority_keys={node: tuple(priorities.key(node)) for node in runtimes},
        knowledge=knowledge,
        scheduler_cursor=scheduler_cursor,
        metrics=copy_metric_records(metrics_records),
        scheduler_state=copy.deepcopy(scheduler_state),
    )


def runtimes_from_snapshot(
    snapshot: NetworkSnapshot,
) -> Tuple[DynamicGraph, Dict[Node, NodeRuntime]]:
    """Rebuild ``(graph, runtimes)`` for a dict simulator from a snapshot.

    The caller is responsible for having restored the priority keys first
    (the runtimes store each node's own key verbatim from the snapshot).
    """
    graph = DynamicGraph(nodes=snapshot.nodes, edges=snapshot.edges)
    runtimes: Dict[Node, NodeRuntime] = {}
    for node in snapshot.nodes:
        runtimes[node] = NodeRuntime(
            node_id=node,
            key=tuple(snapshot.priority_keys[node]),
            state=NodeState(snapshot.states[node]),
            neighbors=set(graph.neighbors(node)),
        )
    for (node, neighbor), (heard_state, key_known) in snapshot.knowledge.items():
        runtime = runtimes.get(node)
        if runtime is None or neighbor not in runtime.neighbors:
            raise NetworkStateError(
                f"knowledge entry ({node!r} -> {neighbor!r}) does not match the "
                "snapshot topology"
            )
        runtime.learn_neighbor(
            neighbor,
            tuple(snapshot.priority_keys[neighbor]) if key_known else None,
            None if heard_state is None else NodeState(heard_state),
        )
    return graph, runtimes
