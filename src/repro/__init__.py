"""repro -- a reproduction of "Optimal Dynamic Distributed MIS" (PODC 2016).

The library implements, from scratch, everything the paper by Censor-Hillel,
Haramaty and Karnin describes or depends on:

* the sequential *template* (Algorithm 1) and the influenced-set analysis of
  Theorem 1 (:mod:`repro.core`), with interchangeable backends behind the
  formal :class:`~repro.core.engine_api.MISEngine` contract -- the
  paper-shaped template engine, the array-backed fast engine
  (``DynamicMIS(engine="fast")``), and any third-party backend added via
  :func:`~repro.core.engine_api.register_engine` -- kept bit-identical by
  the differential conformance suite in ``tests/conformance/``,
* a synchronous and an asynchronous message-passing simulator of the paper's
  dynamic distributed model, plus the constant-broadcast protocol of
  Section 4 (Algorithm 2) and the direct one-round protocol of Corollary 6
  (:mod:`repro.distributed`),
* static-algorithm baselines (Luby, a Ghaffari-style degree-local algorithm,
  sequential greedy) and the deterministic dynamic strawman used by the lower
  bound (:mod:`repro.baselines`),
* the applications: dynamic correlation clustering (3-approximation),
  history-independent maximal matching via the line graph and
  (Delta+1)-coloring via the clique blowup (:mod:`repro.clustering`,
  :mod:`repro.matching`, :mod:`repro.coloring`),
* workload generation, adversaries, lower-bound constructions, statistics and
  reporting used by the experiment suite (:mod:`repro.workloads`,
  :mod:`repro.lowerbounds`, :mod:`repro.analysis`),
* the declarative scenario front door (:mod:`repro.scenario`): serializable
  :class:`~repro.scenario.spec.ScenarioSpec` experiment descriptions and the
  streaming :class:`~repro.scenario.session.Session` runner with
  checkpoint/resume and pluggable metric sinks, driving any registered
  engine or network backend.

Quickstart
----------
>>> from repro import DynamicMIS
>>> from repro.graph.generators import erdos_renyi_graph
>>> maintainer = DynamicMIS(seed=1, initial_graph=erdos_renyi_graph(50, 0.1, seed=2))
>>> maintainer.verify()
>>> report = maintainer.insert_edge(0, 1) if not maintainer.graph.has_edge(0, 1) else None
"""

from repro.core.dynamic_mis import DynamicMIS, MaintainerStatistics
from repro.core.engine_api import (
    BatchUpdateReport,
    EngineSnapshot,
    MISEngine,
    UnknownEngineError,
    available_engines,
    create_engine,
    register_engine,
    unregister_engine,
)
from repro.core.fast_engine import FastEngine
from repro.core.priorities import DeterministicPriorityAssigner, RandomPriorityAssigner
from repro.core.state_api import Checkpointable
from repro.core.template import TemplateEngine, UpdateReport
from repro.distributed.state import NetworkSnapshot
from repro.graph.dynamic_graph import DynamicGraph
from repro.scenario import (
    BackendSpec,
    GraphSpec,
    ScenarioSpec,
    Session,
    WorkloadSpec,
    run_scenario,
)

__version__ = "1.2.0"


def __getattr__(name: str):
    # Live view: ``ENGINE_NAMES`` always reflects the current backend registry.
    if name == "ENGINE_NAMES":
        return available_engines()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DynamicMIS",
    "MaintainerStatistics",
    "TemplateEngine",
    "FastEngine",
    "MISEngine",
    "EngineSnapshot",
    "NetworkSnapshot",
    "Checkpointable",
    "BatchUpdateReport",
    "UnknownEngineError",
    "register_engine",
    "unregister_engine",
    "available_engines",
    "create_engine",
    "ENGINE_NAMES",
    "UpdateReport",
    "DynamicGraph",
    "ScenarioSpec",
    "GraphSpec",
    "WorkloadSpec",
    "BackendSpec",
    "Session",
    "run_scenario",
    "RandomPriorityAssigner",
    "DeterministicPriorityAssigner",
    "__version__",
]
