"""A simplified degree-local static MIS baseline in the spirit of Ghaffari (2015).

The paper cites Ghaffari's O(log Delta) + 2^O(sqrt(log log n)) algorithm as the
state of the art for the *static* distributed model.  We implement the local
part of that algorithm -- the adaptive "desire level" process -- which is what
drives its degree-dependent behaviour:

* every undecided node ``v`` keeps a desire level ``p_v`` (initially 1/2),
* in each round ``v`` marks itself with probability ``p_v``,
* if ``v`` is marked and no neighbor is marked, ``v`` joins the MIS and
  retires together with its neighbors,
* the desire level halves when the *effective degree* (sum of the neighbors'
  desire levels) is at least 2, and doubles (capped at 1/2) otherwise.

The global finishing phase of the real algorithm (shattering + deterministic
clean-up) is replaced by simply iterating until every node is decided, which
is fine for the graph sizes used in the experiments and preserves the
qualitative round/broadcast behaviour that makes it a meaningful second
static baseline.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Optional, Set

from repro.baselines.luby import StaticRunMetrics
from repro.graph.dynamic_graph import DynamicGraph

Node = Hashable


class GhaffariStyleMIS:
    """Runner for the desire-level MIS process described above."""

    #: communication rounds charged per iteration (mark exchange + decision).
    ROUNDS_PER_ITERATION = 2
    #: hard cap on iterations (the process finishes long before on any input
    #: used in the experiments; the cap guards against pathological seeds).
    MAX_ITERATIONS = 10_000

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def run(self, graph: DynamicGraph, metrics: Optional[StaticRunMetrics] = None) -> Set[Node]:
        """Compute an MIS of ``graph``; record the cost in ``metrics`` if given."""
        undecided: Set[Node] = set(graph.nodes())
        neighbors: Dict[Node, Set[Node]] = {
            node: set(graph.neighbors(node)) for node in undecided
        }
        desire: Dict[Node, float] = {node: 0.5 for node in undecided}
        in_mis: Set[Node] = set()

        iterations = 0
        while undecided:
            iterations += 1
            if iterations > self.MAX_ITERATIONS:  # pragma: no cover - safety net
                raise RuntimeError("Ghaffari-style MIS did not terminate")
            if metrics is not None:
                metrics.phases += 1
                metrics.rounds += self.ROUNDS_PER_ITERATION
                metrics.broadcasts += self.ROUNDS_PER_ITERATION * len(undecided)
                metrics.bits += self.ROUNDS_PER_ITERATION * len(undecided) * 2
            marked = {
                node for node in undecided if self._rng.random() < desire[node]
            }
            joined = {
                node
                for node in marked
                if not any(other in marked for other in neighbors[node] if other in undecided)
            }
            in_mis.update(joined)
            retired = set(joined)
            for node in joined:
                retired.update(other for other in neighbors[node] if other in undecided)
            undecided -= retired
            # Desire-level update on the surviving nodes.
            new_desire: Dict[Node, float] = {}
            for node in undecided:
                effective_degree = sum(
                    desire[other] for other in neighbors[node] if other in undecided
                )
                if effective_degree >= 2.0:
                    new_desire[node] = desire[node] / 2.0
                else:
                    new_desire[node] = min(0.5, desire[node] * 2.0)
            desire = new_desire
        return in_mis


def ghaffari_style_mis(graph: DynamicGraph, seed: int = 0) -> Set[Node]:
    """Convenience wrapper: one-shot degree-local MIS without metric collection."""
    return GhaffariStyleMIS(seed).run(graph)
