"""Deterministic and history-dependent dynamic MIS baselines.

Two strawmen from the paper are implemented:

* :class:`DeterministicDynamicMIS` -- the same greedy-invariant maintainer as
  the paper's algorithm but with a *fixed, deterministic* node order instead
  of a random one.  The paper's lower bound (Section 1.1) shows that every
  deterministic algorithm can be forced into Omega(n) adjustments for a
  single change; experiment E5 realizes that with the complete-bipartite
  deletion sequence against this baseline.

* :class:`NaturalGreedyDynamicMIS` -- the "natural algorithm" discussed in
  Section 5: every new node (or newly unblocked node) takes the best output
  it can get *without making any global changes*, and nodes never give up
  their MIS slot unless forced.  Its output therefore depends heavily on the
  order in which the adversary built the graph -- it is the canonical example
  of a history-*dependent* algorithm, and on the star / 3-paths / coloring
  examples the adversary can force it into the worst feasible solution.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set

from repro.core.dynamic_mis import DynamicMIS
from repro.core.priorities import DeterministicPriorityAssigner
from repro.distributed.metrics import ChangeMetrics, MetricsAggregator
from repro.graph.dynamic_graph import DynamicGraph, GraphError
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    TopologyChange,
    validate_change,
)

Node = Hashable


class DeterministicDynamicMIS(DynamicMIS):
    """The paper's template run with a fixed (deterministic) node order.

    Functionally identical to :class:`~repro.core.dynamic_mis.DynamicMIS`
    except that the order ``pi`` is the deterministic order of the node
    identifiers, so the whole algorithm is deterministic -- and therefore
    subject to the paper's Omega(n) adjustment lower bound.
    """

    def __init__(self, initial_graph: Optional[DynamicGraph] = None) -> None:
        super().__init__(priorities=DeterministicPriorityAssigner(), initial_graph=initial_graph)


class NaturalGreedyDynamicMIS:
    """History-dependent greedy maintainer ("give every arrival the best value").

    Rules (all deterministic, no priorities involved):

    * an inserted node joins the MIS iff none of its neighbors is currently in
      the MIS;
    * when an edge is inserted between two MIS nodes, the endpoint named
      second in the change leaves the MIS (and nothing else happens unless
      some neighbor can now join);
    * whenever a node leaves the MIS or a node/edge is deleted, any node that
      has no MIS neighbor greedily joins (in deterministic identifier order);
    * nodes already in the MIS never leave voluntarily.

    The output is always a valid MIS, but *which* MIS depends on the entire
    change history -- this is the algorithm the history-independence examples
    of Section 5 are contrasted against.
    """

    def __init__(self, initial_graph: Optional[DynamicGraph] = None) -> None:
        self._graph = initial_graph.copy() if initial_graph is not None else DynamicGraph()
        self._in_mis: Set[Node] = set()
        self._aggregator = MetricsAggregator()
        # Build the initial MIS by inserting nodes in identifier order, which
        # is what this "natural" algorithm would have done online.
        for node in sorted(self._graph.nodes(), key=repr):
            if not any(other in self._in_mis for other in self._graph.neighbors(node)):
                self._in_mis.add(node)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        """The current graph."""
        return self._graph

    @property
    def metrics(self) -> MetricsAggregator:
        """Per-change adjustment metrics."""
        return self._aggregator

    def mis(self) -> Set[Node]:
        """The current MIS."""
        return set(self._in_mis)

    def states(self) -> Dict[Node, bool]:
        """Output map ``node -> in MIS?``."""
        return {node: node in self._in_mis for node in self._graph.nodes()}

    # ------------------------------------------------------------------
    # Topology changes
    # ------------------------------------------------------------------
    def apply(self, change: TopologyChange) -> ChangeMetrics:
        """Apply one change with the natural greedy repair rules."""
        validate_change(self._graph, change)
        before = self.states()
        if isinstance(change, EdgeInsertion):
            self._graph.add_edge(change.u, change.v)
            if change.u in self._in_mis and change.v in self._in_mis:
                self._in_mis.discard(change.v)
        elif isinstance(change, EdgeDeletion):
            self._graph.remove_edge(change.u, change.v)
        elif isinstance(change, (NodeInsertion, NodeUnmuting)):
            self._graph.add_node_with_edges(change.node, change.neighbors)
            if not any(other in self._in_mis for other in change.neighbors):
                self._in_mis.add(change.node)
        elif isinstance(change, NodeDeletion):
            self._graph.remove_node(change.node)
            self._in_mis.discard(change.node)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown change type: {change!r}")
        self._fill_greedily()
        after = self.states()
        adjusted = {
            node for node, now in after.items() if before.get(node, False) != now
        }
        metrics = ChangeMetrics(
            change_kind=change.kind,
            rounds=1,
            broadcasts=len(adjusted),
            bits=2 * len(adjusted),
            adjustments=len(adjusted),
            adjusted_nodes=adjusted,
            state_changes=len(adjusted),
        )
        self._aggregator.add(metrics)
        return metrics

    def apply_sequence(self, changes: Iterable[TopologyChange]) -> List[ChangeMetrics]:
        """Apply a whole change sequence."""
        return [self.apply(change) for change in changes]

    def verify(self) -> None:
        """Assert that the output is an MIS of the current graph."""
        for node in self._in_mis:
            if not self._graph.has_node(node):
                raise GraphError(f"MIS member {node!r} is not in the graph")
            if any(other in self._in_mis for other in self._graph.neighbors(node)):
                raise AssertionError(f"adjacent MIS nodes around {node!r}")
        for node in self._graph.nodes():
            if node not in self._in_mis and not any(
                other in self._in_mis for other in self._graph.neighbors(node)
            ):
                raise AssertionError(f"node {node!r} could join: not maximal")

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _fill_greedily(self) -> None:
        for node in sorted(self._graph.nodes(), key=repr):
            if node in self._in_mis:
                continue
            if not any(other in self._in_mis for other in self._graph.neighbors(node)):
                self._in_mis.add(node)
