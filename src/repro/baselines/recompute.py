"""Run-a-static-algorithm-after-every-change baseline (the standard approach).

Section 1 of the paper notes that solutions from the static distributed
setting "translate nicely" to the dynamic setting by re-running them after
every topology change; the cost is then the static algorithm's full round and
broadcast complexity *per change* -- Theta(log n) rounds for Luby -- which is
exactly the separation the paper establishes.  Experiment E4 uses this
wrapper around both static baselines.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set

from repro.baselines.ghaffari import GhaffariStyleMIS
from repro.baselines.luby import LubyMIS, StaticRunMetrics
from repro.distributed.metrics import ChangeMetrics, MetricsAggregator
from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.changes import TopologyChange, apply_change_to_graph, validate_change

Node = Hashable


class StaticRecomputeDynamicMIS:
    """Dynamic MIS by re-running a static distributed algorithm after every change.

    Parameters
    ----------
    algorithm:
        ``"luby"`` or ``"ghaffari"`` (or a custom runner object exposing
        ``run(graph, metrics) -> set``).
    seed:
        Seed handed to the static algorithm's RNG.
    initial_graph:
        Optional starting topology; the static algorithm is run once on it.
    """

    def __init__(
        self,
        algorithm: str = "luby",
        seed: int = 0,
        initial_graph: Optional[DynamicGraph] = None,
    ) -> None:
        self._runner = self._make_runner(algorithm, seed)
        self._algorithm_name = (
            algorithm if isinstance(algorithm, str) else type(algorithm).__name__
        )
        self._graph = initial_graph.copy() if initial_graph is not None else DynamicGraph()
        self._mis: Set[Node] = self._runner.run(self._graph)
        self._aggregator = MetricsAggregator()

    @staticmethod
    def _make_runner(algorithm, seed: int):
        if isinstance(algorithm, str):
            if algorithm == "luby":
                return LubyMIS(seed)
            if algorithm == "ghaffari":
                return GhaffariStyleMIS(seed)
            raise ValueError(f"unknown static algorithm {algorithm!r}")
        return algorithm

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        """The current graph."""
        return self._graph

    @property
    def algorithm_name(self) -> str:
        """Name of the wrapped static algorithm."""
        return self._algorithm_name

    @property
    def metrics(self) -> MetricsAggregator:
        """Per-change metrics accumulated so far."""
        return self._aggregator

    def mis(self) -> Set[Node]:
        """The current MIS."""
        return set(self._mis)

    def states(self) -> Dict[Node, bool]:
        """Output map ``node -> in MIS?``."""
        return {node: node in self._mis for node in self._graph.nodes()}

    # ------------------------------------------------------------------
    # Topology changes
    # ------------------------------------------------------------------
    def apply(self, change: TopologyChange) -> ChangeMetrics:
        """Apply a change by re-running the static algorithm on the whole graph."""
        validate_change(self._graph, change)
        before = self.states()
        apply_change_to_graph(self._graph, change)
        run_metrics = StaticRunMetrics()
        self._mis = self._runner.run(self._graph, run_metrics)
        after = self.states()
        adjusted = {
            node for node, now in after.items() if before.get(node, False) != now
        }
        metrics = ChangeMetrics(
            change_kind=change.kind,
            rounds=run_metrics.rounds,
            broadcasts=run_metrics.broadcasts,
            bits=run_metrics.bits,
            adjustments=len(adjusted),
            adjusted_nodes=adjusted,
            state_changes=len(adjusted),
        )
        self._aggregator.add(metrics)
        return metrics

    def apply_sequence(self, changes: Iterable[TopologyChange]) -> List[ChangeMetrics]:
        """Apply a whole change sequence."""
        return [self.apply(change) for change in changes]
