"""Baseline algorithms the paper compares against (all implemented here).

* :mod:`repro.baselines.luby` -- Luby's classic randomized static distributed
  MIS algorithm, O(log n) rounds w.h.p.  Used (through the recompute wrapper)
  as the "run a static algorithm after every change" baseline.
* :mod:`repro.baselines.ghaffari` -- a simplified degree-local static MIS in
  the spirit of Ghaffari's algorithm (desire levels that adapt to the local
  neighborhood), as a second static baseline whose behaviour depends on
  degrees rather than on n.
* :mod:`repro.baselines.greedy_static` -- the sequential random-greedy
  recompute oracle with an explicit cost model.
* :mod:`repro.baselines.deterministic_dynamic` -- the deterministic dynamic
  greedy strawman (fixed priorities) that the lower bound of Section 1.1
  defeats, plus the "natural" history-dependent greedy algorithm discussed in
  Section 5.
* :mod:`repro.baselines.recompute` -- wrapper that turns any static algorithm
  into a dynamic one by re-running it after every topology change, metered
  with the same :class:`~repro.distributed.metrics.ChangeMetrics` as the
  paper's algorithm.
"""

from repro.baselines.luby import LubyMIS, luby_mis
from repro.baselines.ghaffari import GhaffariStyleMIS, ghaffari_style_mis
from repro.baselines.greedy_static import SequentialGreedyRecompute
from repro.baselines.deterministic_dynamic import (
    DeterministicDynamicMIS,
    NaturalGreedyDynamicMIS,
)
from repro.baselines.recompute import StaticRecomputeDynamicMIS

__all__ = [
    "LubyMIS",
    "luby_mis",
    "GhaffariStyleMIS",
    "ghaffari_style_mis",
    "SequentialGreedyRecompute",
    "DeterministicDynamicMIS",
    "NaturalGreedyDynamicMIS",
    "StaticRecomputeDynamicMIS",
]
