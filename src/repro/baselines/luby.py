"""Luby's randomized static distributed MIS algorithm [Luby 1986, Alon et al. 1986].

This is the canonical "static model" algorithm the paper contrasts with:
computing an MIS from scratch takes Theta(log n) synchronous rounds with high
probability, and every active node broadcasts in every round, so re-running it
after each topology change costs Theta(log n) rounds and up to Theta(n log n)
broadcasts per change -- versus the paper's O(1) / O(1) expectations.

The implementation simulates the standard permutation variant: in every phase
each still-undecided node draws a fresh random value and joins the MIS if its
value is smaller than those of all undecided neighbors; MIS nodes and their
neighbors then retire.  A phase costs two communication rounds (announce the
value, announce the decision) and one broadcast per active node per round,
which is what the metrics report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set

from repro.graph.dynamic_graph import DynamicGraph

Node = Hashable


@dataclass
class StaticRunMetrics:
    """Cost of one from-scratch static MIS computation."""

    rounds: int = 0
    broadcasts: int = 0
    bits: int = 0
    phases: int = 0


class LubyMIS:
    """Runner object for Luby's algorithm (keeps its own RNG for reproducibility)."""

    #: communication rounds charged per phase (value exchange + decision).
    ROUNDS_PER_PHASE = 2

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def run(self, graph: DynamicGraph, metrics: Optional[StaticRunMetrics] = None) -> Set[Node]:
        """Compute an MIS of ``graph``; record the cost in ``metrics`` if given.

        Returns the MIS as a set of nodes.  The result is a valid MIS for any
        graph, including the empty one.
        """
        undecided: Set[Node] = set(graph.nodes())
        neighbors: Dict[Node, Set[Node]] = {
            node: set(graph.neighbors(node)) for node in undecided
        }
        in_mis: Set[Node] = set()
        bound = max(2, graph.num_nodes())
        id_bits = max(1, bound.bit_length()) * 2

        while undecided:
            if metrics is not None:
                metrics.phases += 1
                metrics.rounds += self.ROUNDS_PER_PHASE
                metrics.broadcasts += self.ROUNDS_PER_PHASE * len(undecided)
                metrics.bits += len(undecided) * (id_bits + 1) * self.ROUNDS_PER_PHASE
            values = {node: self._rng.random() for node in undecided}
            joined = {
                node
                for node in undecided
                if all(
                    values[node] < values[other]
                    for other in neighbors[node]
                    if other in undecided
                )
            }
            in_mis.update(joined)
            retired = set(joined)
            for node in joined:
                retired.update(other for other in neighbors[node] if other in undecided)
            undecided -= retired
        return in_mis


def luby_mis(graph: DynamicGraph, seed: int = 0) -> Set[Node]:
    """Convenience wrapper: one-shot Luby MIS without metric collection."""
    return LubyMIS(seed).run(graph)
