"""Sequential random-greedy recompute baseline.

Recomputing the greedy MIS from scratch after every change is the simplest
possible correct "algorithm".  It is not a distributed algorithm -- we charge
it an idealized cost of one round and one broadcast per node (the cost of
collecting and redistributing the whole topology would be far larger) -- but
it is useful in two roles:

* as a *correctness oracle*: its output under the same random order must be
  identical to every dynamic engine's output (history independence), and
* as a *lower envelope* for any recompute-style strategy: even with free
  global computation it touches every node on every change, so its adjustment
  complexity per change is 0 but its work is Theta(n + m), which the
  experiments report alongside the paper's O(1)-work algorithm.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set

from repro.core.greedy import greedy_mis
from repro.core.priorities import PriorityAssigner, RandomPriorityAssigner
from repro.distributed.metrics import ChangeMetrics, MetricsAggregator
from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.changes import TopologyChange, apply_change_to_graph

Node = Hashable


class SequentialGreedyRecompute:
    """Dynamic MIS by recomputing the sequential greedy MIS after every change."""

    def __init__(
        self,
        seed: int = 0,
        initial_graph: Optional[DynamicGraph] = None,
        priorities: Optional[PriorityAssigner] = None,
    ) -> None:
        self._priorities = priorities if priorities is not None else RandomPriorityAssigner(seed)
        self._graph = initial_graph.copy() if initial_graph is not None else DynamicGraph()
        for node in self._graph.nodes():
            self._priorities.assign(node)
        self._mis: Set[Node] = greedy_mis(self._graph, self._priorities)
        self._aggregator = MetricsAggregator()

    @property
    def graph(self) -> DynamicGraph:
        """The current graph."""
        return self._graph

    @property
    def priorities(self) -> PriorityAssigner:
        """The order ``pi``."""
        return self._priorities

    @property
    def metrics(self) -> MetricsAggregator:
        """Per-change metrics (work is reported in the ``broadcasts`` field)."""
        return self._aggregator

    def mis(self) -> Set[Node]:
        """The current MIS."""
        return set(self._mis)

    def states(self) -> Dict[Node, bool]:
        """Output map ``node -> in MIS?``."""
        return {node: node in self._mis for node in self._graph.nodes()}

    def apply(self, change: TopologyChange) -> ChangeMetrics:
        """Apply a change by recomputing the greedy MIS from scratch."""
        before = self.states()
        apply_change_to_graph(self._graph, change)
        for node in self._graph.nodes():
            self._priorities.assign(node)
        self._mis = greedy_mis(self._graph, self._priorities)
        after = self.states()
        adjusted = {
            node for node, now in after.items() if before.get(node, False) != now
        }
        metrics = ChangeMetrics(
            change_kind=change.kind,
            rounds=1,
            broadcasts=self._graph.num_nodes(),
            bits=self._graph.num_nodes() * max(1, self._graph.num_nodes().bit_length()),
            adjustments=len(adjusted),
            adjusted_nodes=adjusted,
            state_changes=len(adjusted),
        )
        self._aggregator.add(metrics)
        return metrics

    def apply_sequence(self, changes: Iterable[TopologyChange]) -> List[ChangeMetrics]:
        """Apply a whole change sequence."""
        return [self.apply(change) for change in changes]
