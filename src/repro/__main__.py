"""``python -m repro``: the :mod:`repro.cli` entry point without the console
script, for environments (CI, containers) where the package is on
``PYTHONPATH`` but not pip-installed."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
