"""Sequential coloring baselines for the Example 3 experiment.

The paper's Example 3 (Section 5) considers the complete bipartite graph minus
a perfect matching and compares

* the *random greedy* sequential coloring (first-fit over a uniformly random
  node order), which 2-colors the graph with probability ``1 - 1/n``, against
* the *adversarial* first-fit coloring, where the adversary inserts nodes in
  an order that forces ``Theta(Delta)`` colors (alternating between the two
  sides so that node ``i`` of each side sees colors ``0 .. i-1`` already used
  among its neighbors).

Both are provided here; the dynamic reduction-based coloring of
:mod:`repro.coloring.dynamic_coloring` is benchmarked against them in E10.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Mapping, Optional, Sequence

from repro.graph.dynamic_graph import DynamicGraph

Node = Hashable


def first_fit_coloring(graph: DynamicGraph, order: Sequence[Node]) -> Dict[Node, int]:
    """First-fit (greedy) coloring along the given node order."""
    if set(order) != set(graph.nodes()) or len(order) != graph.num_nodes():
        raise ValueError("order must enumerate every node exactly once")
    colors: Dict[Node, int] = {}
    for node in order:
        taken = {colors[other] for other in graph.iter_neighbors(node) if other in colors}
        color = 0
        while color in taken:
            color += 1
        colors[node] = color
    return colors


def random_greedy_coloring(graph: DynamicGraph, seed: int = 0) -> Dict[Node, int]:
    """First-fit coloring over a uniformly random node order (the paper's random greedy)."""
    order: List[Node] = sorted(graph.nodes(), key=repr)
    random.Random(seed).shuffle(order)
    return first_fit_coloring(graph, order)


def adversarial_first_fit_coloring(
    graph: DynamicGraph, side_size: Optional[int] = None
) -> Dict[Node, int]:
    """Worst-case first-fit order for the complete-bipartite-minus-matching graph.

    Assumes the node labelling of
    :func:`repro.graph.generators.complete_bipartite_minus_matching`: left
    nodes are ``0 .. side_size-1`` and right nodes ``side_size .. 2*side_size-1``,
    with left ``i`` adjacent to right ``side_size + j`` for all ``j != i``.
    Inserting the nodes in the order ``0, side_size, 1, side_size+1, ...``
    (pairing each left node with its *non*-neighbor on the right) forces
    first-fit to use ``side_size`` colors, the classic Theta(Delta) failure.
    """
    if side_size is None:
        side_size = graph.num_nodes() // 2
    if graph.num_nodes() != 2 * side_size:
        raise ValueError("graph does not match the expected bipartite structure")
    order: List[Node] = []
    for i in range(side_size):
        order.append(i)
        order.append(side_size + i)
    return first_fit_coloring(graph, order)


def num_colors_used(colors: Mapping[Node, int]) -> int:
    """Number of distinct colors in a coloring."""
    return len(set(colors.values()))
