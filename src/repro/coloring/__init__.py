"""History-independent dynamic (Delta+1)-coloring (paper, Section 5).

The standard reduction of Luby turns an MIS algorithm into a coloring
algorithm: blow every node up into a clique of ``k >= Delta + 1`` copies and
every edge into a perfect matching between the cliques; a maximal independent
set of the blowup selects exactly one copy per node, and the copy index is the
color.  Running the paper's history independent dynamic MIS on the blowup
yields a history independent dynamic coloring.

* :mod:`repro.coloring.dynamic_coloring` -- the maintainer built on
  :class:`~repro.graph.clique_blowup.CliqueBlowupView`.
* :mod:`repro.coloring.greedy_coloring` -- the sequential random-greedy
  (first-fit) coloring used by the paper's Example 3, plus the worst-case
  adversarial first-fit coloring it is compared against.
"""

from repro.coloring.dynamic_coloring import DynamicColoring
from repro.coloring.greedy_coloring import (
    adversarial_first_fit_coloring,
    num_colors_used,
    random_greedy_coloring,
)

__all__ = [
    "DynamicColoring",
    "random_greedy_coloring",
    "adversarial_first_fit_coloring",
    "num_colors_used",
]
