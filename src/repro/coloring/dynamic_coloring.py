"""Dynamic (Delta+1)-coloring via dynamic MIS on the clique blowup.

:class:`DynamicColoring` maintains a proper coloring of a dynamic graph with a
fixed palette of ``num_colors`` colors by running a
:class:`~repro.core.dynamic_mis.DynamicMIS` on the clique-blowup graph of
:mod:`repro.graph.clique_blowup`.  The palette must stay strictly larger than
the maximum degree at all times (the classic ``Delta + 1`` requirement); the
mutators enforce it.

Every base-graph change translates into ``Theta(num_colors)`` blowup changes
(the matching edges of an inserted/deleted base edge, or the clique of an
inserted/deleted base node), each of which costs O(1) expected adjustments --
this is the ``2 Delta`` adjustment overhead the paper's Example 3 discusses,
and the reason the paper leaves a cheaper dynamic coloring as an open problem.
The point of this class is history independence and correctness, not
adjustment optimality, and the coloring experiment (E10) reports the measured
adjustment cost alongside.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.dynamic_mis import DynamicMIS
from repro.core.engine_api import EngineSpec
from repro.core.template import UpdateReport
from repro.graph.clique_blowup import CliqueBlowupView, color_assignment_from_mis
from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    TopologyChange,
)

Node = Hashable


class DynamicColoring:
    """Maintain a proper ``num_colors``-coloring under fully dynamic changes.

    Parameters
    ----------
    num_colors:
        Palette size; must exceed the maximum degree the graph will ever
        reach (the usual ``Delta + 1`` bound).
    seed:
        Seed of the random order over blowup copies.
    initial_graph:
        Optional starting graph.

    Examples
    --------
    >>> from repro.graph.generators import cycle_graph
    >>> coloring = DynamicColoring(num_colors=3, seed=1, initial_graph=cycle_graph(5))
    >>> coloring.verify()
    >>> len(set(coloring.colors().values())) <= 3
    True
    """

    def __init__(
        self,
        num_colors: int,
        seed: int = 0,
        initial_graph: Optional[DynamicGraph] = None,
        engine: EngineSpec = "template",
    ) -> None:
        self._view = CliqueBlowupView(initial_graph, num_colors=num_colors)
        self._maintainer = DynamicMIS(
            seed=seed, initial_graph=self._view.blowup_graph, engine=engine
        )

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        """The current base graph (do not mutate directly)."""
        return self._view.base_graph

    @property
    def num_colors(self) -> int:
        """Palette size."""
        return self._view.num_colors

    @property
    def mis_maintainer(self) -> DynamicMIS:
        """The dynamic MIS maintainer running on the blowup graph."""
        return self._maintainer

    def colors(self) -> Dict[Node, int]:
        """The current coloring as ``base node -> color index``."""
        return color_assignment_from_mis(self._view, self._maintainer.mis())

    def color_of(self, node: Node) -> int:
        """Color of a single node."""
        return self.colors()[node]

    def verify(self) -> None:
        """Assert the coloring is proper and covers every node."""
        from repro.graph.validation import check_proper_coloring

        self._maintainer.verify()
        colors = self.colors()
        if set(colors) != set(self.graph.nodes()):
            raise AssertionError("coloring does not cover exactly the graph nodes")
        check_proper_coloring(self.graph, colors)

    # ------------------------------------------------------------------
    # Topology changes on the base graph
    # ------------------------------------------------------------------
    def apply(self, change: TopologyChange) -> List[UpdateReport]:
        """Apply one base-graph topology change; return the induced MIS reports."""
        if isinstance(change, EdgeInsertion):
            return self.insert_edge(change.u, change.v)
        if isinstance(change, EdgeDeletion):
            return self.delete_edge(change.u, change.v)
        if isinstance(change, (NodeInsertion, NodeUnmuting)):
            return self.insert_node(change.node, change.neighbors)
        if isinstance(change, NodeDeletion):
            return self.delete_node(change.node)
        raise TypeError(f"unknown change type: {change!r}")

    def apply_sequence(self, changes: Iterable[TopologyChange]) -> List[UpdateReport]:
        """Apply a whole base-graph change sequence."""
        reports: List[UpdateReport] = []
        for change in changes:
            reports.extend(self.apply(change))
        return reports

    def insert_edge(self, u: Node, v: Node) -> List[UpdateReport]:
        """Insert base edge ``{u, v}``."""
        return self._process(self._view.add_edge(u, v))

    def delete_edge(self, u: Node, v: Node) -> List[UpdateReport]:
        """Delete base edge ``{u, v}``."""
        return self._process(self._view.remove_edge(u, v))

    def insert_node(self, node: Node, neighbors: Iterable[Node] = ()) -> List[UpdateReport]:
        """Insert a base node with edges to existing base nodes."""
        return self._process(self._view.add_node_with_edges(node, neighbors))

    def delete_node(self, node: Node) -> List[UpdateReport]:
        """Delete a base node and its incident edges."""
        return self._process(self._view.remove_node(node))

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _process(self, derived_changes: List[Tuple]) -> List[UpdateReport]:
        reports: List[UpdateReport] = []
        for derived in derived_changes:
            operation = derived[0]
            if operation == "add_node":
                _, copy_node, copy_neighbors = derived
                reports.append(self._maintainer.insert_node(copy_node, copy_neighbors))
            elif operation == "remove_node":
                _, copy_node = derived
                reports.append(self._maintainer.delete_node(copy_node))
            elif operation == "add_edge":
                _, left, right = derived
                reports.append(self._maintainer.insert_edge(left, right))
            elif operation == "remove_edge":
                _, left, right = derived
                reports.append(self._maintainer.delete_edge(left, right))
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unexpected derived change {derived!r}")
        return reports


def total_adjustments(reports: Iterable[UpdateReport]) -> int:
    """Total adjustment count over the induced MIS reports of one base change."""
    return sum(report.num_adjustments for report in reports)
