"""Topology-change events (paper, Section 2).

The paper distinguishes six changes in the *distributed* model:

* **edge insertion** -- a new communication link appears; both endpoints are
  notified.
* **graceful edge deletion** -- a link retires but may still carry messages
  until the system is stable again.
* **abrupt edge deletion** -- a link disappears immediately.
* **node insertion** -- a brand new node arrives, possibly with several edges.
* **graceful node deletion** -- a node retires but relays messages until the
  system is stable.
* **abrupt node deletion** -- a node disappears immediately.
* **node unmuting** -- a previously invisible node that overheard its
  neighbors' communication becomes visible (it already knows their IDs and
  states, so it needs no discovery phase).

At the template level (Section 3) only four changes exist -- the
graceful/abrupt and unmuting distinctions only affect *communication*.  The
dataclasses below capture the distributed-level change together with the
flags that the simulators need (``graceful``, ``unmuting``); the template
engine and the sequential maintainers simply ignore those flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Tuple, Union

from repro.graph.dynamic_graph import DynamicGraph, GraphError, canonical_edge

Node = Hashable


@dataclass(frozen=True)
class EdgeInsertion:
    """Insertion of the edge ``{u, v}`` between two existing nodes."""

    u: Node
    v: Node

    kind = "edge_insertion"

    def endpoints(self) -> Tuple[Node, Node]:
        """The two endpoints of the affected edge."""
        return (self.u, self.v)


@dataclass(frozen=True)
class EdgeDeletion:
    """Deletion of the edge ``{u, v}``; graceful deletions may relay messages."""

    u: Node
    v: Node
    graceful: bool = True

    kind = "edge_deletion"

    def endpoints(self) -> Tuple[Node, Node]:
        """The two endpoints of the affected edge."""
        return (self.u, self.v)


@dataclass(frozen=True)
class NodeInsertion:
    """Insertion of a new node, possibly with multiple edges."""

    node: Node
    neighbors: Tuple[Node, ...] = field(default_factory=tuple)

    kind = "node_insertion"


@dataclass(frozen=True)
class NodeUnmuting:
    """A previously invisible node becomes visible.

    The node already overheard its neighbors' communication, so unlike a node
    insertion it knows their random IDs and states upfront; the distributed
    implementation therefore needs only O(1) broadcasts for it.  At the
    template level it is identical to a node insertion.
    """

    node: Node
    neighbors: Tuple[Node, ...] = field(default_factory=tuple)

    kind = "node_unmuting"


@dataclass(frozen=True)
class NodeDeletion:
    """Deletion of a node together with all of its incident edges."""

    node: Node
    graceful: bool = True

    kind = "node_deletion"


TopologyChange = Union[EdgeInsertion, EdgeDeletion, NodeInsertion, NodeUnmuting, NodeDeletion]

CHANGE_KINDS = (
    "edge_insertion",
    "edge_deletion",
    "node_insertion",
    "node_unmuting",
    "node_deletion",
)


def validate_change(graph: DynamicGraph, change: TopologyChange) -> None:
    """Raise :class:`GraphError` if ``change`` cannot be applied to ``graph``."""
    if isinstance(change, EdgeInsertion):
        if not graph.has_node(change.u) or not graph.has_node(change.v):
            raise GraphError(f"edge insertion {change} references a missing node")
        if change.u == change.v:
            raise GraphError("edge insertion would create a self loop")
        if graph.has_edge(change.u, change.v):
            raise GraphError(f"edge ({change.u!r}, {change.v!r}) already exists")
    elif isinstance(change, EdgeDeletion):
        if not graph.has_edge(change.u, change.v):
            raise GraphError(f"edge ({change.u!r}, {change.v!r}) does not exist")
    elif isinstance(change, (NodeInsertion, NodeUnmuting)):
        if graph.has_node(change.node):
            raise GraphError(f"node {change.node!r} already exists")
        for other in change.neighbors:
            if not graph.has_node(other):
                raise GraphError(f"insertion neighbor {other!r} does not exist")
            if other == change.node:
                raise GraphError("node insertion would create a self loop")
        if len(set(change.neighbors)) != len(change.neighbors):
            raise GraphError("duplicate neighbors in node insertion")
    elif isinstance(change, NodeDeletion):
        if not graph.has_node(change.node):
            raise GraphError(f"node {change.node!r} does not exist")
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown change type: {change!r}")


def validate_batch(graph, changes) -> None:
    """Validate a whole batch against the *evolving* topology without mutating it.

    Engines call this before applying any graph delta of
    :meth:`~repro.core.engine_api.MISEngine.apply_batch`, so an invalid
    change anywhere in the batch raises :class:`GraphError` while the engine
    is still untouched (atomic failure).  ``graph`` only needs ``has_node`` /
    ``has_edge``, so both :class:`~repro.graph.dynamic_graph.DynamicGraph`
    and the fast engine's read view qualify.

    The evolving state is tracked as an overlay: ``presence`` overrides node
    existence, ``added_edges`` / ``removed_edges`` override edge existence,
    and any node inserted or deleted within the batch is *touched* -- the
    base graph's edges stop counting for it (deletion destroyed them; a
    re-inserted label starts fresh with only its declared neighbors).
    """
    presence: dict = {}
    touched: set = set()
    added_edges: set = set()
    removed_edges: set = set()

    def node_exists(node: Node) -> bool:
        return presence[node] if node in presence else graph.has_node(node)

    def edge_exists(u: Node, v: Node) -> bool:
        edge = canonical_edge(u, v)
        if edge in added_edges:
            return True
        if edge in removed_edges:
            return False
        if u in touched or v in touched:
            return False
        return graph.has_edge(u, v)

    for change in changes:
        if isinstance(change, EdgeInsertion):
            if not node_exists(change.u) or not node_exists(change.v):
                raise GraphError(f"edge insertion {change} references a missing node")
            if change.u == change.v:
                raise GraphError("edge insertion would create a self loop")
            if edge_exists(change.u, change.v):
                raise GraphError(f"edge ({change.u!r}, {change.v!r}) already exists")
            edge = canonical_edge(change.u, change.v)
            added_edges.add(edge)
            removed_edges.discard(edge)
        elif isinstance(change, EdgeDeletion):
            if not edge_exists(change.u, change.v):
                raise GraphError(f"edge ({change.u!r}, {change.v!r}) does not exist")
            edge = canonical_edge(change.u, change.v)
            removed_edges.add(edge)
            added_edges.discard(edge)
        elif isinstance(change, (NodeInsertion, NodeUnmuting)):
            if node_exists(change.node):
                raise GraphError(f"node {change.node!r} already exists")
            for other in change.neighbors:
                if other == change.node:
                    raise GraphError("node insertion would create a self loop")
                if not node_exists(other):
                    raise GraphError(f"insertion neighbor {other!r} does not exist")
            if len(set(change.neighbors)) != len(change.neighbors):
                raise GraphError("duplicate neighbors in node insertion")
            presence[change.node] = True
            touched.add(change.node)
            for other in change.neighbors:
                added_edges.add(canonical_edge(change.node, other))
        elif isinstance(change, NodeDeletion):
            if not node_exists(change.node):
                raise GraphError(f"node {change.node!r} does not exist")
            presence[change.node] = False
            touched.add(change.node)
            added_edges = {
                edge for edge in added_edges if change.node not in edge
            }
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown change type: {change!r}")


def apply_change_to_graph(graph: DynamicGraph, change: TopologyChange) -> None:
    """Apply ``change`` to ``graph`` in place (validating first)."""
    validate_change(graph, change)
    if isinstance(change, EdgeInsertion):
        graph.add_edge(change.u, change.v)
    elif isinstance(change, EdgeDeletion):
        graph.remove_edge(change.u, change.v)
    elif isinstance(change, (NodeInsertion, NodeUnmuting)):
        graph.add_node_with_edges(change.node, change.neighbors)
    elif isinstance(change, NodeDeletion):
        graph.remove_node(change.node)


def inverse_change(graph_before: DynamicGraph, change: TopologyChange) -> TopologyChange:
    """Return the change that undoes ``change`` (given the graph before it).

    Used by workload generators that build "there and back" sequences for the
    history-independence experiments.
    """
    if isinstance(change, EdgeInsertion):
        return EdgeDeletion(change.u, change.v)
    if isinstance(change, EdgeDeletion):
        return EdgeInsertion(change.u, change.v)
    if isinstance(change, (NodeInsertion, NodeUnmuting)):
        return NodeDeletion(change.node)
    if isinstance(change, NodeDeletion):
        neighbors = tuple(sorted(graph_before.neighbors(change.node), key=repr))
        return NodeInsertion(change.node, neighbors)
    raise TypeError(f"unknown change type: {change!r}")
