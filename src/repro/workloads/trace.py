"""Serialization of graphs and change traces.

Experiments are only reproducible if the exact workload can be stored next to
the results.  This module serializes starting graphs and topology-change
sequences to plain JSON-compatible dictionaries (and to JSON files), and loads
them back, so that

* a workload generated once (e.g. a production-like churn trace) can be
  replayed against any engine or baseline later,
* benchmark inputs can be archived together with EXPERIMENTS.md, and
* regression tests can pin down the exact change sequence that triggered a
  bug.

Only the built-in node types used throughout the library (ints, strings and
tuples thereof, as produced by the reductions) are supported; tuples are
encoded as tagged lists so that round-trips are exact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, Sequence

from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    TopologyChange,
)

Node = Hashable

_TUPLE_TAG = "__tuple__"


class TraceFormatError(ValueError):
    """Raised when a serialized trace or graph cannot be decoded."""


# ----------------------------------------------------------------------
# Node encoding
# ----------------------------------------------------------------------
def encode_node(node: Node) -> Any:
    """Encode a node identifier into a JSON-compatible value."""
    if isinstance(node, tuple):
        return {_TUPLE_TAG: [encode_node(part) for part in node]}
    if isinstance(node, (str, int, float, bool)) or node is None:
        return node
    raise TraceFormatError(f"unsupported node type {type(node).__name__!r} for {node!r}")


def decode_node(value: Any) -> Node:
    """Decode a node identifier produced by :func:`encode_node`."""
    if isinstance(value, dict):
        if set(value) != {_TUPLE_TAG}:
            raise TraceFormatError(f"unexpected node encoding {value!r}")
        return tuple(decode_node(part) for part in value[_TUPLE_TAG])
    if isinstance(value, list):
        raise TraceFormatError("bare lists are not valid node encodings")
    return value


# ----------------------------------------------------------------------
# Change encoding
# ----------------------------------------------------------------------
def encode_change(change: TopologyChange) -> Dict[str, Any]:
    """Encode one topology change as a plain dictionary."""
    if isinstance(change, EdgeInsertion):
        return {"kind": "edge_insertion", "u": encode_node(change.u), "v": encode_node(change.v)}
    if isinstance(change, EdgeDeletion):
        return {
            "kind": "edge_deletion",
            "u": encode_node(change.u),
            "v": encode_node(change.v),
            "graceful": change.graceful,
        }
    if isinstance(change, NodeInsertion):
        return {
            "kind": "node_insertion",
            "node": encode_node(change.node),
            "neighbors": [encode_node(other) for other in change.neighbors],
        }
    if isinstance(change, NodeUnmuting):
        return {
            "kind": "node_unmuting",
            "node": encode_node(change.node),
            "neighbors": [encode_node(other) for other in change.neighbors],
        }
    if isinstance(change, NodeDeletion):
        return {
            "kind": "node_deletion",
            "node": encode_node(change.node),
            "graceful": change.graceful,
        }
    raise TraceFormatError(f"unknown change type {change!r}")


def decode_change(record: Dict[str, Any]) -> TopologyChange:
    """Decode one topology change produced by :func:`encode_change`."""
    try:
        kind = record["kind"]
    except (TypeError, KeyError):
        raise TraceFormatError(f"change record without a kind: {record!r}") from None
    if kind == "edge_insertion":
        return EdgeInsertion(decode_node(record["u"]), decode_node(record["v"]))
    if kind == "edge_deletion":
        return EdgeDeletion(
            decode_node(record["u"]),
            decode_node(record["v"]),
            graceful=bool(record.get("graceful", True)),
        )
    if kind == "node_insertion":
        return NodeInsertion(
            decode_node(record["node"]),
            tuple(decode_node(other) for other in record.get("neighbors", [])),
        )
    if kind == "node_unmuting":
        return NodeUnmuting(
            decode_node(record["node"]),
            tuple(decode_node(other) for other in record.get("neighbors", [])),
        )
    if kind == "node_deletion":
        return NodeDeletion(
            decode_node(record["node"]), graceful=bool(record.get("graceful", True))
        )
    raise TraceFormatError(f"unknown change kind {kind!r}")


# ----------------------------------------------------------------------
# Graph encoding
# ----------------------------------------------------------------------
def encode_graph(graph: DynamicGraph) -> Dict[str, Any]:
    """Encode a graph as ``{"nodes": [...], "edges": [[u, v], ...]}``."""
    return {
        "nodes": [encode_node(node) for node in sorted(graph.nodes(), key=repr)],
        "edges": [[encode_node(u), encode_node(v)] for u, v in graph.edges()],
    }


def decode_graph(record: Dict[str, Any]) -> DynamicGraph:
    """Decode a graph produced by :func:`encode_graph`."""
    try:
        nodes = [decode_node(value) for value in record["nodes"]]
        edges = [(decode_node(u), decode_node(v)) for u, v in record["edges"]]
    except (TypeError, KeyError) as error:
        raise TraceFormatError(f"malformed graph record: {error}") from None
    return DynamicGraph(nodes=nodes, edges=edges)


# ----------------------------------------------------------------------
# Whole traces
# ----------------------------------------------------------------------
def encode_trace(
    changes: Sequence[TopologyChange],
    initial_graph: DynamicGraph | None = None,
    metadata: Dict[str, Any] | None = None,
) -> Dict[str, Any]:
    """Encode a workload (optional starting graph + change sequence + metadata)."""
    record: Dict[str, Any] = {
        "format": "repro-trace-v1",
        "changes": [encode_change(change) for change in changes],
    }
    if initial_graph is not None:
        record["initial_graph"] = encode_graph(initial_graph)
    if metadata:
        record["metadata"] = dict(metadata)
    return record


def decode_trace(record: Dict[str, Any]) -> Dict[str, Any]:
    """Decode a workload into ``{"changes", "initial_graph", "metadata"}`` keys."""
    if not isinstance(record, dict) or record.get("format") != "repro-trace-v1":
        raise TraceFormatError("not a repro-trace-v1 record")
    changes = [decode_change(entry) for entry in record.get("changes", [])]
    graph = decode_graph(record["initial_graph"]) if "initial_graph" in record else None
    return {
        "changes": changes,
        "initial_graph": graph,
        "metadata": dict(record.get("metadata", {})),
    }


def save_trace(
    path,
    changes: Sequence[TopologyChange],
    initial_graph: DynamicGraph | None = None,
    metadata: Dict[str, Any] | None = None,
) -> None:
    """Write a workload to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(encode_trace(changes, initial_graph, metadata), handle, indent=2, sort_keys=True)


def load_trace(path) -> Dict[str, Any]:
    """Read a workload from a JSON file written by :func:`save_trace`."""
    with open(path, "r", encoding="utf-8") as handle:
        return decode_trace(json.load(handle))
