"""Topology-change model and workload generation.

* :mod:`repro.workloads.changes` -- the topology-change event types of
  Section 2 of the paper (edge insertion, graceful/abrupt edge deletion, node
  insertion, graceful/abrupt node deletion, node unmuting) as immutable
  dataclasses, plus helpers to validate and apply them to a graph.
* :mod:`repro.workloads.sequences` -- long-lived change sequences (random
  churn, growth, decay, sliding windows, rebuild-a-target-graph) used by the
  experiments.
* :mod:`repro.workloads.adversary` -- the oblivious adversarial sequences of
  the paper's lower bound and history-independence examples.
"""

from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    NodeUnmuting,
    TopologyChange,
    apply_change_to_graph,
    validate_change,
)
from repro.workloads import adversary, sequences, trace

__all__ = [
    "trace",
    "TopologyChange",
    "EdgeInsertion",
    "EdgeDeletion",
    "NodeInsertion",
    "NodeDeletion",
    "NodeUnmuting",
    "apply_change_to_graph",
    "validate_change",
    "sequences",
    "adversary",
]
