"""Generators of long-lived topology-change sequences.

The paper's guarantees are *per change*: every single topology change costs a
constant number of adjustments/rounds/broadcasts in expectation, for any
change and any (oblivious) sequence.  The experiments therefore drive the
engines with long sequences of changes; this module produces them.

All generators are deterministic functions of their ``seed`` and never touch
the global random state.  Generators that need to know the evolving topology
(e.g. to avoid deleting a non-existent edge) simulate the evolution on a
private copy of the starting graph; they never mutate the caller's graph.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.graph.dynamic_graph import DynamicGraph, canonical_edge
from repro.workloads.changes import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    TopologyChange,
    apply_change_to_graph,
)


def build_sequence(graph: DynamicGraph, seed: Optional[int] = None) -> List[TopologyChange]:
    """A change sequence that builds ``graph`` starting from the empty graph.

    Nodes are inserted first (isolated), then edges are inserted one at a
    time.  If ``seed`` is given, both insertion orders are shuffled, which
    yields a *different history* for the same final graph -- exactly what the
    history-independence experiment needs.
    """
    nodes = sorted(graph.nodes(), key=repr)
    edges = sorted(graph.edges(), key=repr)
    if seed is not None:
        rng = random.Random(seed)
        rng.shuffle(nodes)
        rng.shuffle(edges)
    changes: List[TopologyChange] = [NodeInsertion(node) for node in nodes]
    changes.extend(EdgeInsertion(u, v) for u, v in edges)
    return changes


def incremental_build_sequence(graph: DynamicGraph, seed: int = 0) -> List[TopologyChange]:
    """Build ``graph`` by inserting each node together with its already-present neighbors.

    This exercises the node-insertion-with-edges path instead of the
    edge-by-edge path, giving a second style of history for the same target.
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    rng.shuffle(nodes)
    inserted = set()
    changes: List[TopologyChange] = []
    for node in nodes:
        present_neighbors = tuple(
            sorted((v for v in graph.neighbors(node) if v in inserted), key=repr)
        )
        changes.append(NodeInsertion(node, present_neighbors))
        inserted.add(node)
    return changes


def detour_build_sequence(
    graph: DynamicGraph, num_detours: int = 5, seed: int = 0
) -> List[TopologyChange]:
    """Build ``graph`` but insert and later remove ``num_detours`` extra edges.

    The extra edges are chosen among node pairs that are *not* edges of the
    target graph; each is inserted at a random point and removed again before
    the end, so the final graph is exactly ``graph`` while the history
    differs substantially from a plain build.
    """
    rng = random.Random(seed)
    base = build_sequence(graph, seed=seed)
    node_list = sorted(graph.nodes(), key=repr)
    non_edges: List[Tuple] = []
    for i, u in enumerate(node_list):
        for v in node_list[i + 1 :]:
            if not graph.has_edge(u, v):
                non_edges.append((u, v))
    rng.shuffle(non_edges)
    detours = non_edges[:num_detours]

    # Insert the detour edge right after both endpoints exist, delete it at the end.
    changes = list(base)
    insertion_positions = {}
    for position, change in enumerate(changes):
        if isinstance(change, NodeInsertion):
            insertion_positions[change.node] = position
    offset = 0
    for u, v in detours:
        ready = max(insertion_positions[u], insertion_positions[v]) + 1 + offset
        changes.insert(ready, EdgeInsertion(u, v))
        offset += 1
    changes.extend(EdgeDeletion(u, v) for u, v in detours)
    return changes


def edge_churn_sequence(
    graph: DynamicGraph, num_changes: int, seed: int = 0, insert_probability: float = 0.5
) -> List[TopologyChange]:
    """Random sequence of edge insertions and deletions starting from ``graph``.

    Every step tosses a coin: with ``insert_probability`` it inserts a uniform
    random missing edge (if any), otherwise it deletes a uniform random
    existing edge (if any).  The node set never changes.
    """
    rng = random.Random(seed)
    working = graph.copy()
    nodes = sorted(working.nodes(), key=repr)
    if len(nodes) < 2:
        raise ValueError("edge churn needs at least two nodes")
    changes: List[TopologyChange] = []
    for _ in range(num_changes):
        do_insert = rng.random() < insert_probability
        change = None
        if do_insert:
            change = _random_missing_edge(working, nodes, rng)
            if change is None:
                change = _random_present_edge(working, rng)
        else:
            change = _random_present_edge(working, rng)
            if change is None:
                change = _random_missing_edge(working, nodes, rng)
        if change is None:
            break
        apply_change_to_graph(working, change)
        changes.append(change)
    return changes


def node_churn_sequence(
    graph: DynamicGraph,
    num_changes: int,
    seed: int = 0,
    insert_probability: float = 0.5,
    attachment_probability: float = 0.3,
    graceful_probability: float = 0.5,
) -> List[TopologyChange]:
    """Random sequence of node insertions and deletions starting from ``graph``.

    Inserted nodes get fresh identifiers (strings ``"n<k>"``) and attach to
    each existing node independently with ``attachment_probability``.
    Deletions pick a uniform existing node and are marked graceful with
    probability ``graceful_probability`` (the flag only matters to the
    distributed simulators).
    """
    rng = random.Random(seed)
    working = graph.copy()
    changes: List[TopologyChange] = []
    fresh_counter = 0
    for _ in range(num_changes):
        nodes = sorted(working.nodes(), key=repr)
        do_insert = rng.random() < insert_probability or len(nodes) <= 2
        if do_insert:
            fresh_counter += 1
            new_node = f"n{fresh_counter}"
            while working.has_node(new_node):
                fresh_counter += 1
                new_node = f"n{fresh_counter}"
            neighbors = tuple(v for v in nodes if rng.random() < attachment_probability)
            change: TopologyChange = NodeInsertion(new_node, neighbors)
        else:
            victim = rng.choice(nodes)
            change = NodeDeletion(victim, graceful=rng.random() < graceful_probability)
        apply_change_to_graph(working, change)
        changes.append(change)
    return changes


def mixed_churn_sequence(
    graph: DynamicGraph,
    num_changes: int,
    seed: int = 0,
    edge_change_probability: float = 0.7,
) -> List[TopologyChange]:
    """Interleaved edge and node churn (the general fully dynamic workload)."""
    rng = random.Random(seed)
    working = graph.copy()
    changes: List[TopologyChange] = []
    fresh_counter = 0
    for _ in range(num_changes):
        nodes = sorted(working.nodes(), key=repr)
        if rng.random() < edge_change_probability and len(nodes) >= 2:
            if rng.random() < 0.5:
                change = _random_missing_edge(working, nodes, rng) or _random_present_edge(
                    working, rng
                )
            else:
                change = _random_present_edge(working, rng) or _random_missing_edge(
                    working, nodes, rng
                )
        else:
            if rng.random() < 0.5 or len(nodes) <= 2:
                fresh_counter += 1
                new_node = f"m{fresh_counter}"
                while working.has_node(new_node):
                    fresh_counter += 1
                    new_node = f"m{fresh_counter}"
                neighbors = tuple(v for v in nodes if rng.random() < 0.3)
                change = NodeInsertion(new_node, neighbors)
            else:
                change = NodeDeletion(rng.choice(nodes), graceful=rng.random() < 0.5)
        if change is None:
            break
        apply_change_to_graph(working, change)
        changes.append(change)
    return changes


def sliding_window_sequence(
    num_nodes: int, window_size: int, num_changes: int, seed: int = 0
) -> List[TopologyChange]:
    """Edges arrive continuously and expire after ``window_size`` further arrivals.

    Starts from an empty graph on ``num_nodes`` nodes; the generated sequence
    alternates insertions of fresh random edges with deletions of the oldest
    live edge once the window is full.  Models link churn in, e.g., an
    overlay network.
    """
    rng = random.Random(seed)
    working = DynamicGraph(nodes=range(num_nodes))
    live: List[Tuple] = []
    changes: List[TopologyChange] = []
    attempts = 0
    while len(changes) < num_changes and attempts < 50 * num_changes:
        attempts += 1
        if len(live) >= window_size:
            u, v = live.pop(0)
            if working.has_edge(u, v):
                change = EdgeDeletion(u, v, graceful=bool(rng.getrandbits(1)))
                apply_change_to_graph(working, change)
                changes.append(change)
            continue
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v or working.has_edge(u, v):
            continue
        change = EdgeInsertion(*canonical_edge(u, v))
        apply_change_to_graph(working, change)
        live.append(canonical_edge(u, v))
        changes.append(change)
    return changes


def teardown_sequence(graph: DynamicGraph, seed: Optional[int] = None) -> List[TopologyChange]:
    """A sequence that removes every edge and node of ``graph`` one at a time."""
    edges = sorted(graph.edges(), key=repr)
    nodes = sorted(graph.nodes(), key=repr)
    if seed is not None:
        rng = random.Random(seed)
        rng.shuffle(edges)
        rng.shuffle(nodes)
    changes: List[TopologyChange] = [EdgeDeletion(u, v) for u, v in edges]
    changes.extend(NodeDeletion(node) for node in nodes)
    return changes


def replay_on_graph(graph: DynamicGraph, changes: Iterable[TopologyChange]) -> DynamicGraph:
    """Return the graph obtained by applying ``changes`` to a copy of ``graph``."""
    working = graph.copy()
    for change in changes:
        apply_change_to_graph(working, change)
    return working


def alternative_histories(
    graph: DynamicGraph, num_histories: int, seed: int = 0
) -> List[List[TopologyChange]]:
    """Several different change histories that all end at the same ``graph``.

    Used by the history-independence experiment: the output distribution of a
    history independent algorithm must be identical across all of them.
    """
    histories: List[List[TopologyChange]] = []
    for index in range(num_histories):
        style = index % 3
        if style == 0:
            histories.append(build_sequence(graph, seed=seed + index))
        elif style == 1:
            histories.append(incremental_build_sequence(graph, seed=seed + index))
        else:
            histories.append(
                detour_build_sequence(graph, num_detours=3 + index, seed=seed + index)
            )
    return histories


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _random_missing_edge(graph: DynamicGraph, nodes: Sequence, rng: random.Random):
    if len(nodes) < 2:
        return None
    for _ in range(200):
        u = rng.choice(nodes)
        v = rng.choice(nodes)
        if u != v and not graph.has_edge(u, v):
            return EdgeInsertion(*canonical_edge(u, v))
    return None


def _random_present_edge(graph: DynamicGraph, rng: random.Random):
    edges = graph.edges()
    if not edges:
        return None
    u, v = rng.choice(edges)
    return EdgeDeletion(u, v, graceful=bool(rng.getrandbits(1)))
