"""Oblivious adversarial change sequences from the paper.

Two constructions appear explicitly in the paper:

* **The deterministic lower bound** (Section 1.1): start from the complete
  bipartite graph K_{k,k} and delete, one by one, the nodes of the side that
  the (deterministic) algorithm chose as its MIS.  Somewhere along the way the
  MIS must flip from one side to the other, causing ~2k simultaneous output
  changes.  Because the targeted side is a *deterministic function of the
  algorithm*, this adversary is still oblivious to randomness -- it can be
  precomputed -- which is exactly the paper's argument.

* **Example constructions of Section 5** (star, disjoint 3-paths,
  complete-bipartite-minus-matching): the adversary builds a specific target
  graph; the point of the history-independence property is that *how* it
  builds it does not matter.

The module also contains an *adaptive* MIS-deleting adversary.  The paper
excludes adaptive adversaries (they can trivially force one adjustment per
change forever by always deleting an MIS node); we include it to demonstrate
that exclusion empirically.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Set, Tuple

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    complete_bipartite_graph,
    bipartite_sides,
    disjoint_paths_graph,
    star_graph,
)
from repro.workloads.changes import NodeDeletion, TopologyChange
from repro.workloads.sequences import build_sequence


def bipartite_lower_bound_instance(side_size: int) -> Tuple[DynamicGraph, List[int], List[int]]:
    """Return (K_{k,k}, left side, right side) for the lower-bound experiment."""
    graph = complete_bipartite_graph(side_size, side_size)
    left, right = bipartite_sides(side_size, side_size)
    return graph, left, right


def side_deletion_sequence(side_nodes: Sequence, graceful: bool = True) -> List[TopologyChange]:
    """Delete the given side's nodes one by one (the lower-bound adversary)."""
    return [NodeDeletion(node, graceful=graceful) for node in side_nodes]


def lower_bound_sequence_for(
    initial_mis: Set, left: Sequence, right: Sequence, graceful: bool = True
) -> List[TopologyChange]:
    """Build the deletion sequence targeting whichever side the algorithm picked.

    ``initial_mis`` is the algorithm's MIS on K_{k,k}; in a complete bipartite
    graph it must be (a subset of) one side.  The adversary deletes exactly
    that side.  For a deterministic algorithm the choice is fixed, so this is
    an oblivious sequence; we reuse the same helper for randomized algorithms
    purely for measurement purposes.
    """
    left_set, right_set = set(left), set(right)
    if initial_mis & left_set:
        target = list(left)
    elif initial_mis & right_set:
        target = list(right)
    else:
        raise ValueError("the provided MIS intersects neither side")
    return side_deletion_sequence(target, graceful=graceful)


def star_construction_history(num_leaves: int, seed: int = 0) -> List[TopologyChange]:
    """An adversarial history that ends at the star graph (Section 5, Example 1)."""
    return build_sequence(star_graph(num_leaves), seed=seed)


def three_paths_construction_history(num_paths: int, seed: int = 0) -> List[TopologyChange]:
    """An adversarial history that ends at n/4 disjoint 3-edge paths (Example 2)."""
    return build_sequence(disjoint_paths_graph(num_paths, edges_per_path=3), seed=seed)


def adaptive_mis_deletion_adversary(
    current_mis: Callable[[], Set],
    num_deletions: int,
    rng_seed: int = 0,
) -> "AdaptiveAdversary":
    """Return an adaptive adversary that always deletes a current MIS node.

    The callable ``current_mis`` must return the algorithm's current MIS; the
    adversary queries it before every deletion.  This violates the paper's
    oblivious-adversary assumption on purpose: experiment E1 uses it to show
    that *every* change then costs at least one adjustment, i.e. the paper's
    expectation-1 bound is tight and cannot be improved to o(1) even against
    this weak adaptivity.
    """
    return AdaptiveAdversary(current_mis, num_deletions, rng_seed)


class AdaptiveAdversary:
    """Iterator of deletions that always target a node of the current MIS.

    The adversary is *stateful* (its RNG advances with every deletion it
    emits), so scenario sessions that stream it can be checkpointed:
    :meth:`getstate` returns a picklable/JSON-encodable value capturing the
    remaining budget and the RNG position, and :meth:`setstate` resumes an
    adversary exactly where an interrupted one stopped -- against whatever
    ``current_mis`` callable the resumed run provides.
    """

    #: Tag identifying :meth:`getstate` payloads (guards against garbage).
    STATE_TAG = "adaptive-adversary-v1"

    def __init__(
        self, current_mis: Callable[[], Set], num_deletions: int, rng_seed: int = 0
    ) -> None:
        self._current_mis = current_mis
        self._remaining = num_deletions
        self._rng = random.Random(rng_seed)

    @property
    def remaining(self) -> int:
        """How many deletions the adversary will still emit (at most)."""
        return self._remaining

    def getstate(self) -> Tuple:
        """Resumable state: ``(tag, remaining budget, RNG state)``."""
        return (self.STATE_TAG, self._remaining, self._rng.getstate())

    def setstate(self, state: Tuple) -> None:
        """Rewind to a state captured by :meth:`getstate` (exact resume)."""
        try:
            tag, remaining, rng_state = state
        except (TypeError, ValueError):
            raise ValueError(f"not an AdaptiveAdversary state: {state!r}") from None
        if tag != self.STATE_TAG:
            raise ValueError(f"not an AdaptiveAdversary state: {state!r}")
        self._remaining = int(remaining)
        self._rng.setstate(rng_state)

    def __iter__(self) -> "AdaptiveAdversary":
        return self

    def __next__(self) -> TopologyChange:
        if self._remaining <= 0:
            raise StopIteration
        mis_nodes = sorted(self._current_mis(), key=repr)
        if not mis_nodes:
            raise StopIteration
        self._remaining -= 1
        return NodeDeletion(self._rng.choice(mis_nodes), graceful=True)
