"""The one registry implementation behind every backend registry.

Four subsystems expose a name-keyed plugin registry with the same shape:
sequential engines (:mod:`repro.core.engine_api`), distributed network cores
(:mod:`repro.distributed.network_api`), metric sinks
(:mod:`repro.scenario.sinks`) and async delay schedulers
(:mod:`repro.distributed.scheduler`).  Historically each hand-rolled its own
dict, duplicate-name guard and difflib hint; this module consolidates the
mechanism so the four stay uniform by construction:

* :class:`Registry` -- ordered name -> value store with the shared
  registration rules (non-empty string names, ``overwrite=True`` to replace)
  and a pluggable unknown-name error;
* :class:`UnknownNameError` -- the common :class:`ValueError` subclass every
  registry's lookup error derives from, carrying ``.kind``, ``.name`` and
  ``.known`` plus the did-you-mean hint;
* :func:`did_you_mean` -- the shared ``"; did you mean 'x' or 'y'?"`` suffix
  (also used by the scenario-spec decoders for unknown keys);
* :class:`LiveNames` -- a read-only live :class:`Sequence` view of the
  registered names, for CLI ``choices=`` arguments that must see late
  registrations.

The four public modules keep their historical function names
(``register_engine`` / ``register_network`` / ``register_sink`` /
``create_scheduler`` and friends) as thin wrappers over a module-level
:class:`Registry`, so no call site changes; only the mechanism is shared.
"""

from __future__ import annotations

import difflib
from types import MappingProxyType
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple


def did_you_mean(value: Any, known: Sequence[str]) -> str:
    """The shared hint suffix: ``"; did you mean 'x' or 'y'?"`` or ``""``."""
    close = difflib.get_close_matches(
        str(value), [str(name) for name in known], n=2, cutoff=0.5
    )
    if close:
        return f"; did you mean {' or '.join(repr(c) for c in close)}?"
    return ""


class UnknownNameError(ValueError):
    """A name that is not in a registry, with a did-you-mean hint.

    Every registry's lookup error (``UnknownEngineError``,
    ``UnknownNetworkError``, ``UnknownSinkError``, ``UnknownSchedulerError``)
    subclasses this, so callers can catch the whole family uniformly while
    the per-registry classes keep their historical constructor signatures.
    """

    def __init__(
        self,
        kind: str,
        name: str,
        known: Sequence[str],
        message: Optional[str] = None,
        known_word: str = "registered",
    ) -> None:
        known = tuple(known)
        if message is None:
            message = (
                f"unknown {kind} {name!r}; {known_word} {kind}s: {known}"
                f"{did_you_mean(name, known)}"
            )
        super().__init__(message)
        self.kind = kind
        self.name = name
        self.known = known


def _default_check_value(kind: str, name: str, value: Any) -> None:
    if not callable(value):
        raise TypeError(f"{kind} factory for {name!r} must be callable, got {value!r}")


class Registry:
    """Ordered name -> value store with the shared registration discipline.

    Parameters
    ----------
    kind:
        The registry's noun (``"engine"``, ``"network"``, ...), used in every
        shared error message.
    error:
        ``(name, known) -> ValueError`` building the unknown-name error; the
        per-registry :class:`UnknownNameError` subclasses qualify directly.
    check_value:
        Optional ``(name, value) -> None`` validating a registration; the
        default requires a callable factory.
    check_name:
        Optional ``(name) -> None`` replacing the default name rule (a
        non-empty string) when a registry constrains names further.
    """

    def __init__(
        self,
        kind: str,
        error: Callable[[str, Tuple[str, ...]], ValueError],
        check_value: Optional[Callable[[str, Any], None]] = None,
        check_name: Optional[Callable[[str], None]] = None,
    ) -> None:
        self._kind = kind
        self._error = error
        self._check_value = check_value
        self._check_name = check_name
        self._items: Dict[str, Any] = {}

    @property
    def kind(self) -> str:
        """The registry's noun (used in its error messages)."""
        return self._kind

    def register(self, name: str, value: Any, overwrite: bool = False) -> None:
        """Register ``value`` under ``name`` (raise on duplicates unless overwrite)."""
        if self._check_name is not None:
            self._check_name(name)
        elif not isinstance(name, str) or not name:
            raise ValueError(
                f"{self._kind} name must be a non-empty string, got {name!r}"
            )
        if self._check_value is not None:
            self._check_value(name, value)
        else:
            _default_check_value(self._kind, name, value)
        if name in self._items and not overwrite:
            raise ValueError(
                f"{self._kind} {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        self._items[name] = value

    def unregister(self, name: str) -> None:
        """Remove ``name`` (no-op if absent; mainly for tests)."""
        self._items.pop(name, None)

    def names(self) -> Tuple[str, ...]:
        """The registered names, in registration order."""
        return tuple(self._items)

    def get(self, name: str) -> Any:
        """The value under ``name``; raises the registry's unknown-name error."""
        try:
            return self._items[name]
        except KeyError:
            raise self.unknown(name) from None

    def find(self, name: str) -> Any:
        """The value under ``name`` or ``None`` (no error)."""
        return self._items.get(name)

    def unknown(self, name: str) -> ValueError:
        """Build (without raising) the unknown-name error for ``name``."""
        return self._error(name, self.names())

    def view(self) -> Mapping[str, Any]:
        """Read-only *live* mapping view of the registry."""
        return MappingProxyType(self._items)

    def items(self) -> Tuple[Tuple[str, Any], ...]:
        return tuple(self._items.items())

    def __contains__(self, name: object) -> bool:
        return name in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[str]:
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self._kind!r}, names={self.names()!r})"


class LiveNames(Sequence):
    """Read-only live view of a registry's names (CLI ``choices=`` arguments)."""

    def __init__(self, registry: Registry) -> None:
        self._registry = registry

    def __len__(self) -> int:
        return len(self._registry)

    def __getitem__(self, index):
        return self._registry.names()[index]

    def __contains__(self, name) -> bool:
        return name in self._registry

    def __iter__(self):
        return iter(self._registry.names())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self._registry.names())
